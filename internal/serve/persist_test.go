package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cdagio/internal/core"
	"cdagio/internal/fault"
	"cdagio/internal/gen"
)

// waitReady polls /readyz until warm-restart recovery finishes.
func waitReady(t *testing.T, base string) {
	t.Helper()
	waitFor(t, func() bool {
		status, _, _ := doRaw(t, "GET", base+"/readyz", "")
		return status == http.StatusOK
	}, "daemon never became ready")
}

// storeServer mounts a daemon with persistence and waits out its recovery.
func storeServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, hs := testServer(t, cfg)
	waitReady(t, hs.URL)
	return s, hs
}

func storeHealth(t *testing.T, base string) map[string]any {
	t.Helper()
	status, _, health := do(t, "GET", base+"/healthz", "")
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d body %v", status, health)
	}
	st, _ := health["store"].(map[string]any)
	if st == nil {
		t.Fatalf("healthz has no store section: %v", health)
	}
	return st
}

// TestWarmRestartReplaysAcknowledgedResponses is the kill-restart chaos test:
// every response acknowledged before the kill must be served bit-identically
// (with a memo hit) by the restarted daemon — including one journaled after a
// torn append left garbage frames mid-log.  The kill is simulated in-process
// by Abandon (close without the final fsync), which leaves the log exactly as
// a SIGKILL between write(2) calls would.
func TestWarmRestartReplaysAcknowledgedResponses(t *testing.T) {
	dir := t.TempDir()
	s1, hs1 := storeServer(t, Config{StoreDir: dir})

	treeID := upload(t, hs1.URL, `{"gen":{"kind":"tree","n":64}}`)
	inlineID := upload(t, hs1.URL,
		`{"graph":{"vertices":4,"edges":[[0,2],[1,2],[2,3]],"inputs":[0,1],"outputs":[3]}}`)

	type ack struct {
		path, body string
		resp       []byte
	}
	var acked []ack
	run := func(path, body string) {
		t.Helper()
		status, _, raw := doRaw(t, "POST", hs1.URL+path, body)
		if status != http.StatusOK {
			t.Fatalf("POST %s: status %d body %s", path, status, raw)
		}
		acked = append(acked, ack{path, body, raw})
	}
	run("/v1/graphs/"+treeID+"/wmax", `{}`)
	run("/v1/graphs/"+treeID+"/analyze", `{"s":3}`)
	run("/v1/graphs/"+inlineID+"/wmax", `{}`)

	// A torn append: half the memo frame lands, the request fails with 500 and
	// is NOT acknowledged.  The log now carries a garbage region that recovery
	// must resynchronize across.
	restore := FaultPoint(func(point string) {
		if point == fault.PointStoreAppendTorn {
			panic("injected torn write")
		}
	})
	status, _, payload := do(t, "POST", hs1.URL+"/v1/graphs/"+treeID+"/wavefront", `{"vertex":5}`)
	restore()
	if status != http.StatusInternalServerError || errClass(t, payload) != "internal" {
		t.Fatalf("torn append: status %d body %v, want structured 500", status, payload)
	}

	// One more acknowledged response lands after the torn bytes: recovery must
	// find it on the far side of the garbage.
	run("/v1/graphs/"+treeID+"/play", `{"s":3}`)

	// Kill.  Acknowledged appends were fsynced; nothing else is promised.
	if err := s1.store.Abandon(); err != nil {
		t.Fatalf("abandon: %v", err)
	}
	hs1.Close()

	// Restart on the same directory: every acknowledged response replays
	// bit-identically as a memo hit.
	_, hs2 := storeServer(t, Config{StoreDir: dir})
	for _, a := range acked {
		status, hdr, raw := doRaw(t, "POST", hs2.URL+a.path, a.body)
		if status != http.StatusOK {
			t.Fatalf("replay %s: status %d body %s", a.path, status, raw)
		}
		if hdr.Get("X-Cdagd-Memo") != "hit" {
			t.Fatalf("replay %s: memo %q, want hit", a.path, hdr.Get("X-Cdagd-Memo"))
		}
		if !bytes.Equal(raw, a.resp) {
			t.Fatalf("replay %s: body differs:\n  pre-kill  %s\n  post-kill %s", a.path, a.resp, raw)
		}
	}
	st := storeHealth(t, hs2.URL)
	if st["corrupt_records"].(float64) < 1 {
		t.Fatalf("recovery saw no corruption despite the torn frame: %v", st)
	}
	if st["recovered_memos"].(float64) != float64(len(acked)) {
		t.Fatalf("recovered %v memos, want %d", st["recovered_memos"], len(acked))
	}
}

// TestReadyzGatedOnRecovery parks recovery on a fault hook and verifies the
// warming daemon: /readyz and every /v1/ route shed with 503, /healthz stays
// live and reports "warming", and the doors open once recovery returns.
func TestReadyzGatedOnRecovery(t *testing.T) {
	entered := make(chan struct{}, 1)
	block := make(chan struct{})
	restore := FaultPoint(func(point string) {
		if point == fault.PointStoreRecover {
			entered <- struct{}{}
			<-block
		}
	})
	defer restore()

	_, hs := testServer(t, Config{StoreDir: t.TempDir()})
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("recovery never started")
	}

	status, hdr, payload := do(t, "GET", hs.URL+"/readyz", "")
	if status != http.StatusServiceUnavailable || errClass(t, payload) != "overloaded" || hdr.Get("Retry-After") == "" {
		t.Fatalf("readyz while warming: status %d headers %v body %v", status, hdr, payload)
	}
	status, _, payload = do(t, "POST", hs.URL+"/v1/graphs", `{"gen":{"kind":"chain","n":8}}`)
	if status != http.StatusServiceUnavailable || errClass(t, payload) != "overloaded" {
		t.Fatalf("upload while warming: status %d body %v", status, payload)
	}
	status, _, payload = do(t, "GET", hs.URL+"/v1/graphs/sha256:beef", "")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("metadata while warming: status %d body %v, want 503 (not a 404 lie)", status, payload)
	}
	status, _, health := do(t, "GET", hs.URL+"/healthz", "")
	if status != http.StatusOK || health["status"] != "warming" {
		t.Fatalf("healthz while warming: status %d body %v", status, health)
	}

	close(block)
	waitReady(t, hs.URL)
	upload(t, hs.URL, `{"gen":{"kind":"chain","n":8}}`)
}

// TestRecoveryCountersAfterLogDamage damages a real log — one byte flipped in
// an interior record, garbage appended as a torn tail — and verifies the
// restarted daemon boots anyway, serves the surviving graphs, and reports the
// damage on /healthz instead of hiding it.
func TestRecoveryCountersAfterLogDamage(t *testing.T) {
	dir := t.TempDir()
	s1, hs1 := storeServer(t, Config{StoreDir: dir})
	ids := []string{
		upload(t, hs1.URL, `{"gen":{"kind":"chain","n":8}}`),
		upload(t, hs1.URL, `{"gen":{"kind":"chain","n":9}}`),
		upload(t, hs1.URL, `{"gen":{"kind":"chain","n":10}}`),
	}
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	logPath := filepath.Join(dir, "log.bin")
	buf, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("read log: %v", err)
	}
	// Three similar records: the midpoint lands inside the second one.
	buf[len(buf)/2] ^= 0xff
	// A torn tail: a frame header promising more bytes than exist.
	buf = append(buf, 0xcd, 0xa6, 0x0d, 0x17, 0xff, 0xff, 0x0f, 0x00)
	if err := os.WriteFile(logPath, buf, 0o644); err != nil {
		t.Fatalf("write damaged log: %v", err)
	}

	_, hs2 := storeServer(t, Config{StoreDir: dir})
	st := storeHealth(t, hs2.URL)
	if st["recovered_graphs"].(float64) != 2 {
		t.Fatalf("recovered %v graphs, want 2 (one corrupted away): %v", st["recovered_graphs"], st)
	}
	if st["corrupt_records"].(float64) < 1 || st["truncated_bytes"].(float64) < 1 {
		t.Fatalf("damage not reported: %v", st)
	}
	if status, _, _ := doRaw(t, "GET", hs2.URL+"/v1/graphs/"+ids[0], ""); status != http.StatusOK {
		t.Fatalf("first graph lost: %d", status)
	}
	if status, _, _ := doRaw(t, "GET", hs2.URL+"/v1/graphs/"+ids[2], ""); status != http.StatusOK {
		t.Fatalf("third graph lost despite resynchronization: %d", status)
	}
	if status, _, _ := doRaw(t, "GET", hs2.URL+"/v1/graphs/"+ids[1], ""); status != http.StatusNotFound {
		t.Fatalf("corrupted graph resurrected: %d", status)
	}
}

// TestFsyncFailureDegradesWithoutPoisoning forces the batch fsync to fail:
// affected requests get a structured 500, nothing enters the cache behind the
// journal's back, and once the fault clears, the identical requests succeed.
func TestFsyncFailureDegradesWithoutPoisoning(t *testing.T) {
	_, hs := storeServer(t, Config{StoreDir: t.TempDir()})
	id := upload(t, hs.URL, `{"gen":{"kind":"chain","n":32}}`)

	restore := FaultPoint(func(point string) {
		if point == fault.PointStoreAppendFsync {
			panic("injected fsync failure")
		}
	})
	// A new upload fails and is not findable afterwards.
	status, _, payload := do(t, "POST", hs.URL+"/v1/graphs", `{"gen":{"kind":"chain","n":33}}`)
	if status != http.StatusInternalServerError || errClass(t, payload) != "internal" {
		t.Fatalf("upload under fsync fault: status %d body %v", status, payload)
	}
	failedID := HashID([]byte(GenKey(&GenSpec{Kind: "chain", N: 33})))
	if status, _, _ := doRaw(t, "GET", hs.URL+"/v1/graphs/"+failedID, ""); status != http.StatusNotFound {
		t.Fatalf("unjournaled graph is findable: %d", status)
	}
	// An engine run fails at the memo append and is not memoized.
	status, _, payload = do(t, "POST", hs.URL+"/v1/graphs/"+id+"/wmax", `{}`)
	if status != http.StatusInternalServerError || errClass(t, payload) != "internal" {
		t.Fatalf("engine under fsync fault: status %d body %v", status, payload)
	}
	restore()

	// The fault is gone: the same requests now succeed from scratch — the
	// failed attempts poisoned nothing.
	status, hdr, _ := doRaw(t, "POST", hs.URL+"/v1/graphs/"+id+"/wmax", `{}`)
	if status != http.StatusOK || hdr.Get("X-Cdagd-Memo") == "hit" {
		t.Fatalf("retry after fault: status %d memo %q, want fresh 200", status, hdr.Get("X-Cdagd-Memo"))
	}
	status, hdr, _ = doRaw(t, "POST", hs.URL+"/v1/graphs/"+id+"/wmax", `{}`)
	if status != http.StatusOK || hdr.Get("X-Cdagd-Memo") != "hit" {
		t.Fatalf("memo after fault: status %d memo %q", status, hdr.Get("X-Cdagd-Memo"))
	}
	status, _, payload = do(t, "POST", hs.URL+"/v1/graphs", `{"gen":{"kind":"chain","n":33}}`)
	if status != http.StatusCreated {
		t.Fatalf("upload retry after fault: status %d body %v", status, payload)
	}
	if st := storeHealth(t, hs.URL); st["append_errors"].(float64) < 2 {
		t.Fatalf("append errors not counted: %v", st)
	}
}

// TestCompactionDropsEvictedRecords: after eviction makes a journaled graph
// dead, compaction rewrites the log without it, and a restart restores only
// what the cache would have held anyway.
func TestCompactionDropsEvictedRecords(t *testing.T) {
	fp := core.NewWorkspace(gen.Chain(300)).FootprintBytes(1)
	dir := t.TempDir()
	cfg := Config{StoreDir: dir, CacheBudget: fp + fp/2, SolverLimit: 1}
	s1, hs1 := storeServer(t, cfg)

	idA := upload(t, hs1.URL, `{"gen":{"kind":"chain","n":300}}`)
	idB := upload(t, hs1.URL, `{"gen":{"kind":"chain","n":301}}`) // evicts A
	status, _, respB := doRaw(t, "POST", hs1.URL+"/v1/graphs/"+idB+"/wmax", `{}`)
	if status != http.StatusOK {
		t.Fatalf("wmax on B: status %d", status)
	}

	s1.compactStore()
	if got := s1.compacts.Load(); got != 1 {
		t.Fatalf("compactions = %d, want 1", got)
	}
	if st := storeHealth(t, hs1.URL); st["compactions"].(float64) != 1 {
		t.Fatalf("healthz compactions: %v", st)
	}
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, hs2 := storeServer(t, cfg)
	st := storeHealth(t, hs2.URL)
	if st["recovered_graphs"].(float64) != 1 || st["skipped_records"].(float64) != 0 {
		t.Fatalf("compacted log should restore exactly B: %v", st)
	}
	if status, _, _ := doRaw(t, "GET", hs2.URL+"/v1/graphs/"+idB, ""); status != http.StatusOK {
		t.Fatalf("live graph lost by compaction: %d", status)
	}
	if status, _, _ := doRaw(t, "GET", hs2.URL+"/v1/graphs/"+idA, ""); status != http.StatusNotFound {
		t.Fatalf("evicted graph survived compaction: %d", status)
	}
	// B's memo survived compaction too, bit-identically.
	status, hdr, raw := doRaw(t, "POST", hs2.URL+"/v1/graphs/"+idB+"/wmax", `{}`)
	if status != http.StatusOK || hdr.Get("X-Cdagd-Memo") != "hit" || !bytes.Equal(raw, respB) {
		t.Fatalf("memo after compaction+restart: status %d memo %q", status, hdr.Get("X-Cdagd-Memo"))
	}
}

// TestMemoCountersOnHealthz: the memo hit/miss/occupancy counters and the
// eviction counter surface on /healthz (no store required).
func TestMemoCountersOnHealthz(t *testing.T) {
	_, hs := testServer(t, Config{})
	id := upload(t, hs.URL, `{"gen":{"kind":"chain","n":16}}`)
	doRaw(t, "POST", hs.URL+"/v1/graphs/"+id+"/wmax", `{}`)
	doRaw(t, "POST", hs.URL+"/v1/graphs/"+id+"/wmax", `{}`)

	_, _, health := do(t, "GET", hs.URL+"/healthz", "")
	cache := health["cache"].(map[string]any)
	memo := cache["memo"].(map[string]any)
	if memo["hits"].(float64) < 1 || memo["misses"].(float64) < 1 {
		t.Fatalf("memo traffic not counted: %v", memo)
	}
	if memo["entries"].(float64) < 1 || memo["bytes"].(float64) <= 0 {
		t.Fatalf("memo occupancy not counted: %v", memo)
	}
	if _, ok := cache["evictions"].(float64); !ok {
		t.Fatalf("evictions counter missing: %v", cache)
	}
}

// TestEvictionCounterOnHealthz forces an LRU eviction and reads it back.
func TestEvictionCounterOnHealthz(t *testing.T) {
	fp := core.NewWorkspace(gen.Chain(300)).FootprintBytes(1)
	_, hs := testServer(t, Config{CacheBudget: fp + fp/2, SolverLimit: 1})
	upload(t, hs.URL, `{"gen":{"kind":"chain","n":300}}`)
	upload(t, hs.URL, `{"gen":{"kind":"chain","n":301}}`)
	_, _, health := do(t, "GET", hs.URL+"/healthz", "")
	cache := health["cache"].(map[string]any)
	if cache["evictions"].(float64) != 1 {
		t.Fatalf("evictions = %v, want 1", cache["evictions"])
	}
}

// TestStorelessHasNoStoreSection: without -store-dir the daemon is the PR 7
// daemon — no store section on /healthz, no warming phase, ready immediately.
func TestStorelessHasNoStoreSection(t *testing.T) {
	s, hs := testServer(t, Config{})
	if s.store != nil || s.warming.Load() {
		t.Fatal("store-less daemon has store state")
	}
	if status, _, _ := doRaw(t, "GET", hs.URL+"/readyz", ""); status != http.StatusOK {
		t.Fatal("store-less daemon not immediately ready")
	}
	_, _, health := do(t, "GET", hs.URL+"/healthz", "")
	if _, present := health["store"]; present {
		t.Fatalf("store section present without a store: %v", health)
	}
	if !strings.HasPrefix(upload(t, hs.URL, `{"gen":{"kind":"chain","n":8}}`), "sha256:") {
		t.Fatal("upload failed")
	}
}
