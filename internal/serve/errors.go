package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"cdagio/internal/cdag"
	"cdagio/internal/fault"
	"cdagio/internal/pebble"
)

// The error taxonomy of the daemon.  Every failure a request can experience
// is classified into exactly one of these classes before it leaves the
// process, so clients see a stable, machine-readable contract and a panic
// deep inside an engine worker surfaces as a structured 500 — never as a
// dead process.
var (
	// ErrInvalidInput classifies malformed or semantically invalid request
	// data: unparsable JSON, graphs failing validation, unknown engines or
	// parameters out of domain.  HTTP 400.
	ErrInvalidInput = errors.New("serve: invalid input")
	// ErrResourceLimit classifies requests that exceed a configured resource
	// bound: graphs larger than the admission footprint, declared sizes over
	// the ingestion limits, exact searches beyond their state budget.
	// HTTP 413.
	ErrResourceLimit = errors.New("serve: resource limit exceeded")
	// ErrOverloaded classifies admission-control rejections: the request
	// queue for the engine class is full (HTTP 429 + Retry-After), or the
	// server is shedding expensive engines under load (HTTP 503 +
	// Retry-After).
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrNotFound classifies requests against unknown routes or graph IDs
	// (possibly evicted from the Workspace cache).  HTTP 404.
	ErrNotFound = errors.New("serve: not found")
	// ErrDeadline classifies requests whose deadline expired (or whose
	// client went away) before the engines finished.  HTTP 504.
	ErrDeadline = errors.New("serve: deadline exceeded")
	// ErrInternal classifies everything that is the daemon's own fault —
	// above all, recovered panics from engine workers.  HTTP 500.
	ErrInternal = errors.New("serve: internal error")
)

// Error is a classified request failure: one taxonomy class, a human
// diagnostic, and (for overload rejections) a retry hint.
type Error struct {
	Class  error         // one of the taxonomy sentinels above
	Detail string        // human-readable diagnostic
	Retry  time.Duration // > 0: client should retry after this long
	Shed   bool          // overload subclass: the engine class was shed (503, not 429)
}

// Error renders the class and detail.
func (e *Error) Error() string {
	if e.Detail == "" {
		return e.Class.Error()
	}
	return fmt.Sprintf("%v: %s", e.Class, e.Detail)
}

// Unwrap exposes the taxonomy class to errors.Is.
func (e *Error) Unwrap() error { return e.Class }

func invalidf(format string, args ...any) *Error {
	return &Error{Class: ErrInvalidInput, Detail: fmt.Sprintf(format, args...)}
}

func limitf(format string, args ...any) *Error {
	return &Error{Class: ErrResourceLimit, Detail: fmt.Sprintf(format, args...)}
}

func notFoundf(format string, args ...any) *Error {
	return &Error{Class: ErrNotFound, Detail: fmt.Sprintf(format, args...)}
}

func overloadedf(retry time.Duration, format string, args ...any) *Error {
	return &Error{Class: ErrOverloaded, Detail: fmt.Sprintf(format, args...), Retry: retry}
}

func shedf(retry time.Duration, format string, args ...any) *Error {
	return &Error{Class: ErrOverloaded, Detail: fmt.Sprintf(format, args...), Retry: retry, Shed: true}
}

func internalf(format string, args ...any) *Error {
	return &Error{Class: ErrInternal, Detail: fmt.Sprintf(format, args...)}
}

// classify maps an arbitrary engine or ingestion error onto the taxonomy.
// Recovered panics are internal; context expiry is a deadline; the engines'
// size/budget sentinels and the ingestion limits are resource limits; every
// other engine error is a complaint about the request's data or parameters
// and classifies as invalid input.
func classify(err error) *Error {
	var se *Error
	if errors.As(err, &se) {
		return se
	}
	var pe *fault.PanicError
	if errors.As(err, &pe) {
		return &Error{Class: ErrInternal, Detail: pe.Error()}
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return &Error{Class: ErrDeadline, Detail: err.Error()}
	case errors.Is(err, cdag.ErrLimit),
		errors.Is(err, pebble.ErrTooLarge),
		errors.Is(err, pebble.ErrSearchBudget):
		return &Error{Class: ErrResourceLimit, Detail: err.Error()}
	default:
		return &Error{Class: ErrInvalidInput, Detail: err.Error()}
	}
}

// classKey returns the wire name of the error's taxonomy class, the stable
// string clients switch on.
func classKey(e *Error) string {
	switch {
	case errors.Is(e.Class, ErrInvalidInput):
		return "invalid_input"
	case errors.Is(e.Class, ErrResourceLimit):
		return "resource_limit"
	case errors.Is(e.Class, ErrOverloaded):
		return "overloaded"
	case errors.Is(e.Class, ErrNotFound):
		return "not_found"
	case errors.Is(e.Class, ErrDeadline):
		return "deadline"
	default:
		return "internal"
	}
}

// httpStatus maps the error's taxonomy class to its HTTP status code.
func httpStatus(e *Error) int {
	switch {
	case errors.Is(e.Class, ErrInvalidInput):
		return http.StatusBadRequest
	case errors.Is(e.Class, ErrResourceLimit):
		return http.StatusRequestEntityTooLarge
	case errors.Is(e.Class, ErrOverloaded):
		if e.Shed {
			// Load shedding (dropping the expensive engine class) is "service
			// unavailable"; a momentarily full queue is "too many requests".
			return http.StatusServiceUnavailable
		}
		return http.StatusTooManyRequests
	case errors.Is(e.Class, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(e.Class, ErrDeadline):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}
