package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"

	"cdagio/internal/cdag"
	"cdagio/internal/core"
	"cdagio/internal/memsim"
	"cdagio/internal/pebble"
	"cdagio/internal/prbw"
	"cdagio/internal/wavefront"
)

// engineClass splits the engines into admission classes: heavy engines run
// min-cut scans or exponential searches and are gated (and shed) separately
// from the light players and probes, so an overload of w^max requests never
// starves a cheap wavefront probe.
type engineClass int

const (
	classLight engineClass = iota
	classHeavy
)

// defaultCandidateSample matches the analyzer's default degree-ranked
// candidate sample size for w^max scans.
const defaultCandidateSample = 32

// engines maps the URL engine name to its admission class.  This is also the
// routing whitelist: names outside it are 404s.
var engines = map[string]engineClass{
	"analyze":   classHeavy,
	"wmax":      classHeavy,
	"optimal":   classHeavy,
	"wavefront": classLight,
	"dominator": classLight,
	"play":      classLight,
	"prbw":      classLight,
	"simulate":  classLight,
	"sweep":     classLight,
}

// decodeBody strictly decodes an engine request body into dst.  An empty
// body selects all defaults.
func decodeBody(body []byte, dst any) error {
	if len(bytes.TrimSpace(body)) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return invalidf("request body: %v", err)
	}
	return nil
}

func parseVariant(s string) (pebble.Variant, error) {
	switch strings.ToLower(s) {
	case "", "rbw":
		return pebble.RBW, nil
	case "hongkung", "hk", "redblue":
		return pebble.HongKung, nil
	default:
		return 0, invalidf("unknown game variant %q (want rbw or hongkung)", s)
	}
}

func parsePebblePolicy(s string) (pebble.EvictionPolicy, error) {
	switch strings.ToLower(s) {
	case "", "belady":
		return pebble.Belady, nil
	case "lru":
		return pebble.LRU, nil
	default:
		return 0, invalidf("unknown eviction policy %q (want belady or lru)", s)
	}
}

func parseMemsimPolicy(s string) (memsim.Policy, error) {
	switch strings.ToLower(s) {
	case "", "belady":
		return memsim.Belady, nil
	case "lru":
		return memsim.LRU, nil
	default:
		return 0, invalidf("unknown replacement policy %q (want belady or lru)", s)
	}
}

// checkVertices validates request-supplied vertex IDs against the graph and
// converts them; the engines index arrays with these, so range errors must
// be caught here, not by a panic five frames down.
func checkVertices(g *cdag.Graph, raw []int32, what string) ([]cdag.VertexID, error) {
	n := int32(g.NumVertices())
	out := make([]cdag.VertexID, len(raw))
	for i, v := range raw {
		if v < 0 || v >= n {
			return nil, invalidf("%s[%d] = %d out of range [0, %d)", what, i, v, n)
		}
		out[i] = cdag.VertexID(v)
	}
	return out, nil
}

// boundJSON is the wire form of a bounds.Bound.
type boundJSON struct {
	Value       float64 `json:"value"`
	Kind        string  `json:"kind"`
	Technique   string  `json:"technique"`
	Assumptions string  `json:"assumptions,omitempty"`
}

// EngineLimits carries the per-request admission limits RunEngine enforces;
// the daemon fills it from its Config, batch callers (cdagx) from their own
// budgets.
type EngineLimits struct {
	// MaxSweepJobs bounds the number of memsim jobs one sweep request may
	// name.  Zero means unlimited.
	MaxSweepJobs int
}

// runEngine executes one engine request under the daemon's configured limits.
func (s *Server) runEngine(ctx context.Context, ws *core.Workspace, engine string, body []byte) (any, error) {
	return RunEngine(ctx, ws, engine, body, EngineLimits{MaxSweepJobs: s.cfg.MaxSweepJobs})
}

// RunEngine executes one engine request against a Workspace and returns the
// JSON-marshalable response payload.  This is the single engine dispatcher
// shared by the daemon's HTTP handlers and cdagx's local executor: both sides
// marshal the same payload, so a cell computed in-process is byte-identical
// to the same cell served by a remote cdagd.  Deadlines and admission have
// already been applied by the caller; everything below runs under ctx.
func RunEngine(ctx context.Context, ws *core.Workspace, engine string, body []byte, lim EngineLimits) (any, error) {
	g := ws.Graph()
	switch engine {
	case "wmax":
		var req struct {
			Candidates  int `json:"candidates,omitempty"`  // 0 default sample, <0 all vertices, >0 sample size
			Concurrency int `json:"concurrency,omitempty"` // 0 = GOMAXPROCS
		}
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		var cands []cdag.VertexID
		if req.Candidates >= 0 {
			k := req.Candidates
			if k == 0 {
				k = defaultCandidateSample
			}
			cands = wavefront.TopCandidates(g, k)
		}
		w, at, err := ws.WMax(ctx, cands, wavefront.WMaxOptions{Concurrency: req.Concurrency})
		if err != nil {
			return nil, err
		}
		return map[string]any{"wmax": w, "at": int32(at)}, nil

	case "analyze":
		var req struct {
			S           int  `json:"s"`
			Candidates  int  `json:"candidates,omitempty"`
			Concurrency int  `json:"concurrency,omitempty"`
			ExactLimit  int  `json:"exact_optimal_limit,omitempty"`
			NoTwoPhase  bool `json:"disable_two_phase,omitempty"`
		}
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		a, err := ws.Analyze(ctx, core.Options{
			FastMemory:          req.S,
			WavefrontCandidates: req.Candidates,
			Concurrency:         req.Concurrency,
			ExactOptimalLimit:   req.ExactLimit,
			DisableTwoPhase:     req.NoTwoPhase,
		})
		if err != nil {
			return nil, err
		}
		lbs := make([]boundJSON, len(a.LowerBounds))
		for i, b := range a.LowerBounds {
			lbs[i] = boundJSON{Value: b.Value, Kind: b.Kind.String(), Technique: b.Technique, Assumptions: b.Assumptions}
		}
		return map[string]any{
			"s":            a.FastMemory,
			"wmax":         a.WMax,
			"wmax_at":      int32(a.WMaxAt),
			"measured_io":  a.MeasuredIO,
			"schedule":     a.ScheduleUsed,
			"gap":          a.Gap(),
			"lower_bounds": lbs,
			"upper_bound": boundJSON{Value: a.Upper.Value, Kind: a.Upper.Kind.String(),
				Technique: a.Upper.Technique, Assumptions: a.Upper.Assumptions},
		}, nil

	case "optimal":
		var req struct {
			Variant   string `json:"variant,omitempty"`
			S         int    `json:"s"`
			MaxStates int    `json:"max_states,omitempty"`
		}
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		variant, err := parseVariant(req.Variant)
		if err != nil {
			return nil, err
		}
		if req.S < 1 {
			return nil, invalidf("s = %d: need at least one red pebble", req.S)
		}
		io, err := ws.OptimalIO(ctx, variant, req.S, pebble.OptimalOptions{MaxStates: req.MaxStates})
		if err != nil {
			return nil, err
		}
		return map[string]any{"optimal_io": io}, nil

	case "wavefront":
		var req struct {
			Vertex int32 `json:"vertex"`
		}
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		vs, err := checkVertices(g, []int32{req.Vertex}, "vertex")
		if err != nil {
			return nil, err
		}
		w, err := ws.WavefrontAt(ctx, vs[0])
		if err != nil {
			return nil, err
		}
		return map[string]any{"wavefront": w}, nil

	case "dominator":
		var req struct {
			Targets []int32 `json:"targets"`
		}
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		if len(req.Targets) == 0 {
			return nil, invalidf("dominator: need at least one target vertex")
		}
		vs, err := checkVertices(g, req.Targets, "targets")
		if err != nil {
			return nil, err
		}
		target := cdag.NewVertexSet(g.NumVertices())
		target.AddAll(vs)
		k, dom, err := ws.MinDominatorSize(ctx, target)
		if err != nil {
			return nil, err
		}
		out := make([]int32, len(dom))
		for i, v := range dom {
			out[i] = int32(v)
		}
		return map[string]any{"size": k, "dominator": out}, nil

	case "play":
		var req struct {
			Variant string  `json:"variant,omitempty"`
			S       int     `json:"s"`
			Policy  string  `json:"policy,omitempty"`
			Order   []int32 `json:"order,omitempty"`
		}
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		variant, err := parseVariant(req.Variant)
		if err != nil {
			return nil, err
		}
		policy, err := parsePebblePolicy(req.Policy)
		if err != nil {
			return nil, err
		}
		var order []cdag.VertexID
		if req.Order != nil {
			if order, err = checkVertices(g, req.Order, "order"); err != nil {
				return nil, err
			}
		}
		res, err := ws.PlayCtx(ctx, variant, req.S, order, policy, false)
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"loads": res.Loads, "stores": res.Stores, "io": res.IO(), "moves": res.Moves,
		}, nil

	case "prbw":
		var req struct {
			P          int    `json:"p"`
			S1         int    `json:"s1"`
			SL         int    `json:"sl"`
			Assignment string `json:"assignment,omitempty"` // "single" or "roundrobin"
			Grain      int    `json:"grain,omitempty"`
		}
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		topo := prbw.TwoLevel(req.P, req.S1, req.SL)
		if err := topo.Validate(); err != nil {
			return nil, invalidf("topology: %v", err)
		}
		var asg prbw.Assignment
		switch strings.ToLower(req.Assignment) {
		case "", "single":
			asg = prbw.SingleProcessor(g)
		case "roundrobin":
			asg = prbw.RoundRobin(g, req.P, req.Grain)
		default:
			return nil, invalidf("unknown assignment %q (want single or roundrobin)", req.Assignment)
		}
		stats, err := ws.PlayParallel(ctx, topo, asg)
		if err != nil {
			return nil, err
		}
		return map[string]any{
			"move_ups":    stats.MoveUpsInto,
			"move_downs":  stats.MoveDownsInto,
			"inputs":      stats.InputsAt,
			"outputs":     stats.OutputsAt,
			"remote_gets": stats.RemoteGetsAt,
			"computes":    stats.ComputesBy,
		}, nil

	case "simulate":
		var req simulateRequest
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		cfg, err := req.config()
		if err != nil {
			return nil, err
		}
		stats, err := ws.Simulate(ctx, cfg, nil, nil)
		if err != nil {
			return nil, err
		}
		return SimStatsJSON(stats), nil

	case "sweep":
		var req struct {
			Jobs    []simulateRequest `json:"jobs"`
			Workers int               `json:"workers,omitempty"`
		}
		if err := decodeBody(body, &req); err != nil {
			return nil, err
		}
		if len(req.Jobs) == 0 {
			return nil, invalidf("sweep: need at least one job")
		}
		if max := lim.MaxSweepJobs; max > 0 && len(req.Jobs) > max {
			return nil, limitf("sweep: %d jobs exceeds per-request limit %d", len(req.Jobs), max)
		}
		jobs := make([]memsim.Job, len(req.Jobs))
		for i := range req.Jobs {
			cfg, err := req.Jobs[i].config()
			if err != nil {
				return nil, err
			}
			jobs[i] = memsim.Job{Cfg: cfg}
		}
		all, err := ws.SimulateSweep(ctx, jobs, req.Workers)
		if err != nil {
			return nil, err
		}
		out := make([]map[string]any, len(all))
		for i, st := range all {
			out[i] = SimStatsJSON(st)
		}
		return map[string]any{"results": out}, nil

	default:
		return nil, notFoundf("unknown engine %q", engine)
	}
}

// simulateRequest is one memsim machine configuration on the wire.
type simulateRequest struct {
	Nodes     int    `json:"nodes"`
	FastWords int    `json:"fast_words"`
	Policy    string `json:"policy,omitempty"`
}

func (r *simulateRequest) config() (memsim.Config, error) {
	policy, err := parseMemsimPolicy(r.Policy)
	if err != nil {
		return memsim.Config{}, err
	}
	if r.Nodes < 1 {
		return memsim.Config{}, invalidf("simulate: nodes = %d, need at least 1", r.Nodes)
	}
	if r.FastWords < 1 {
		return memsim.Config{}, invalidf("simulate: fast_words = %d, need at least 1", r.FastWords)
	}
	return memsim.Config{Nodes: r.Nodes, FastWords: r.FastWords, Policy: policy}, nil
}

// SimStatsJSON renders memsim statistics in the daemon's wire shape; cdagx
// reuses it for locally-simulated cells so their cached bodies match what a
// remote daemon would have returned.
func SimStatsJSON(st *memsim.Stats) map[string]any {
	return map[string]any{
		"loads":       st.LoadsPerNode,
		"stores":      st.StoresPerNode,
		"remote_gets": st.RemoteGetsPerNode,
		"computes":    st.ComputesPerNode,
	}
}
