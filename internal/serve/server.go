// Package serve implements cdagd, the crash-safe analysis daemon over the
// Workspace seam: an HTTP/JSON front end that ingests CDAGs (inline JSON or
// generator specs), keeps a byte-budgeted LRU of live Workspaces keyed by
// content hash, and exposes the engines with panic isolation, per-request
// deadlines, bounded admission queues and request-hash memoization.
//
// The robustness contract: no request — however malformed, oversized or
// unlucky — kills the process or poisons a cached Workspace.  Every failure
// is classified into the error taxonomy (ErrInvalidInput, ErrResourceLimit,
// ErrOverloaded, ErrNotFound, ErrDeadline, ErrInternal) before it leaves the
// daemon, and a panic inside an engine worker surfaces as a structured 500
// while subsequent requests on the same Workspace keep returning
// bit-identical results.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cdagio/internal/cdag"
	"cdagio/internal/core"
	"cdagio/internal/fault"
	"cdagio/internal/store"
)

// FaultPoint installs a test hook called at every fault-injection point the
// engines pass through (e.g. "graphalg.wmax.worker", "memsim.sweep.worker",
// "prbw.play"); a hook that panics simulates a crash at that point.  The
// returned function restores the previous hook.  This is the lever the
// crash-safety e2e tests pull to prove panic isolation; production servers
// never install one.
func FaultPoint(h func(point string)) (restore func()) {
	return fault.SetHook(fault.Hook(h))
}

// Config tunes the daemon.  The zero value serves with the defaults below.
type Config struct {
	// Addr is the TCP listen address ("" selects 127.0.0.1:0).
	Addr string
	// CacheBudget bounds the total estimated bytes of cached Workspaces and
	// memoized responses (default 256 MiB).
	CacheBudget int64
	// JSONLimits bounds inline graph uploads before allocation (defaults:
	// 2M vertices, 16M edges, 16 MiB of labels).
	JSONLimits cdag.JSONLimits
	// MaxBodyBytes bounds any request body (default 64 MiB).
	MaxBodyBytes int64
	// SolverLimit caps the cut solvers outstanding per Workspace; it also
	// scales the footprint estimate used for cache admission (default
	// GOMAXPROCS).
	SolverLimit int
	// HeavyInFlight/HeavyQueue gate the expensive engines (analyze, wmax,
	// optimal) and graph ingestion (defaults 2 and 8).  For both queue
	// depths, zero selects the default and a negative depth disables
	// queueing entirely: requests beyond the in-flight cap are rejected
	// immediately with 429.
	HeavyInFlight, HeavyQueue int
	// LightInFlight/LightQueue gate the cheap engines (defaults 16 and 64);
	// the queue depth follows the same zero-default/negative-disable rule.
	LightInFlight, LightQueue int
	// DefaultDeadline applies when a request names none; MaxDeadline is the
	// server-side hard cap on any request (defaults 30s and 2m).
	DefaultDeadline, MaxDeadline time.Duration
	// DrainTimeout bounds the graceful shutdown: in-flight requests get this
	// long to finish before their contexts are force-cancelled (default 10s).
	DrainTimeout time.Duration
	// ShedThreshold is the light-class saturation fraction beyond which the
	// heavy engines are shed with 503 (default 0.9); the cheap probes keep
	// flowing while w^max scans wait out the storm.
	ShedThreshold float64
	// MaxSweepJobs bounds the jobs of one sweep request (default 256).
	MaxSweepJobs int
	// MaxMemoEntry bounds one memoized response body; larger responses are
	// recomputed on every request instead of cached (default 1 MiB).
	MaxMemoEntry int64
	// StoreDir enables crash-safe persistence: uploaded graphs and memoized
	// responses are journaled to an append-only checksummed log under this
	// directory, replayed into the cache on restart (honoring CacheBudget),
	// and compacted when the log outgrows CompactThreshold.  Empty keeps the
	// daemon pure in-memory — the default, and byte-for-byte the pre-store
	// request path.
	StoreDir string
	// NoFsync skips the store's per-batch fsync (crash-safe, not
	// power-loss-safe).  Only meaningful with StoreDir set.
	NoFsync bool
	// CompactThreshold is the log size (bytes) beyond which a background
	// compaction rewrites it down to the live cache contents (default
	// 64 MiB).
	CompactThreshold int64
}

// DefaultCacheBudget is the Workspace-cache byte budget a zero Config gets.
// Exported so batch front ends (cdagx) admit generator specs against the
// same ceiling a default daemon would.
const DefaultCacheBudget int64 = 256 << 20

// DefaultJSONLimits returns the upload limits a zero Config gets.
func DefaultJSONLimits() cdag.JSONLimits {
	return cdag.JSONLimits{MaxVertices: 2 << 20, MaxEdges: 16 << 20, MaxLabelBytes: 16 << 20}
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.CacheBudget <= 0 {
		c.CacheBudget = DefaultCacheBudget
	}
	if c.JSONLimits == (cdag.JSONLimits{}) {
		c.JSONLimits = DefaultJSONLimits()
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.SolverLimit <= 0 {
		c.SolverLimit = runtime.GOMAXPROCS(0)
	}
	if c.HeavyInFlight <= 0 {
		c.HeavyInFlight = 2
	}
	c.HeavyQueue = queueDepth(c.HeavyQueue, 8)
	if c.LightInFlight <= 0 {
		c.LightInFlight = 16
	}
	c.LightQueue = queueDepth(c.LightQueue, 64)
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.ShedThreshold <= 0 || c.ShedThreshold > 1 {
		c.ShedThreshold = 0.9
	}
	if c.MaxSweepJobs <= 0 {
		c.MaxSweepJobs = 256
	}
	if c.MaxMemoEntry <= 0 {
		c.MaxMemoEntry = 1 << 20
	}
	if c.CompactThreshold <= 0 {
		c.CompactThreshold = 64 << 20
	}
	return c
}

// queueDepth resolves a configured admission-queue depth: zero selects the
// default, negative means "no queue" (normalized to zero), positive passes
// through.  Both engine classes use the same rule.
func queueDepth(n, def int) int {
	switch {
	case n == 0:
		return def
	case n < 0:
		return 0
	default:
		return n
	}
}

// Server is the cdagd daemon: Workspace cache, admission gates and HTTP
// surface.  Create one with New, mount Handler on any HTTP server or call
// Run for the full lifecycle including graceful drain.
type Server struct {
	cfg      Config
	cache    *wsCache
	heavy    *gate
	light    *gate
	draining atomic.Bool
	lastErr  atomic.Value // string: most recent internal-class error detail

	// Durable-store state (all zero-valued when StoreDir is unset).
	store      *store.Store
	storeOK    atomic.Bool // false after an unrecoverable store failure: serve in-memory only
	warming    atomic.Bool // true until log recovery finishes; gates /readyz and writes
	compacting atomic.Bool // single-flight latch for background compaction
	recovery   recoveryStats
	appendErrs atomic.Int64
	compacts   atomic.Int64

	// pending marks records journaled but not yet visible in the cache, so a
	// concurrent compaction cannot misread them as dead; see persist.go.
	pendingMu sync.Mutex
	pending   map[string]int
}

// recoveryStats is what the warm restart replayed, for /healthz.
type recoveryStats struct {
	graphs, memos, skipped atomic.Int64 // skipped: valid records the budget or limits refused
	corrupt, truncated     atomic.Int64 // from the log scan: corruption events, torn-tail bytes
	records                atomic.Int64
}

// New returns a Server with cfg (zero fields take defaults).  With
// cfg.StoreDir set it also opens the durable store and starts log recovery
// in the background; until recovery completes the daemon reports itself
// unready and sheds requests, so a warm restart never serves from a
// half-repopulated cache.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newWSCache(cfg.CacheBudget, cfg.MaxMemoEntry),
		heavy:   newGate("heavy", cfg.HeavyInFlight, cfg.HeavyQueue),
		light:   newGate("light", cfg.LightInFlight, cfg.LightQueue),
		pending: map[string]int{},
	}
	s.lastErr.Store("")
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, store.Options{NoFsync: cfg.NoFsync})
		if err != nil {
			return nil, err
		}
		s.store = st
		s.storeOK.Store(true)
		s.warming.Store(true)
		go s.recoverStore()
	}
	return s, nil
}

// Close releases the durable store (flushing its final batch).  Safe to call
// on a store-less server; Serve calls it after the drain completes.
func (s *Server) Close() error {
	if s.store == nil {
		return nil
	}
	err := s.store.Close()
	if errors.Is(err, store.ErrClosed) {
		return nil
	}
	return err
}

// Handler returns the daemon's HTTP surface:
//
//	GET  /healthz                  liveness + load metrics (always 200)
//	GET  /readyz                   readiness (503 while draining)
//	POST /v1/graphs                ingest a graph or generator spec
//	GET  /v1/graphs/{id}           metadata of a cached graph
//	POST /v1/graphs/{id}/{engine}  run an engine (?deadline_ms= caps it)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.recovering(s.handleHealthz))
	mux.HandleFunc("/readyz", s.recovering(s.handleReadyz))
	mux.HandleFunc("/v1/graphs", s.recovering(s.handleUpload))
	mux.HandleFunc("/v1/graphs/", s.recovering(s.handleGraph))
	return mux
}

// recovering wraps a handler so a panic on the handler goroutine itself
// (worker-goroutine panics are already converted to errors at their source)
// becomes a structured 500 instead of killing the connection.
func (s *Server) recovering(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.writeError(w, internalf("handler panic: %v", rec))
			}
		}()
		h(w, r)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	switch {
	case s.draining.Load():
		status = "draining"
	case s.warming.Load():
		status = "warming"
	}
	cs := s.cache.stats()
	payload := map[string]any{
		"status": status,
		"heavy":  map[string]any{"in_flight": s.heavy.inFlight(), "queued": s.heavy.queued()},
		"light":  map[string]any{"in_flight": s.light.inFlight(), "queued": s.light.queued()},
		"cache": map[string]any{
			"graphs": cs.graphs, "used_bytes": cs.usedBytes, "budget_bytes": cs.budget,
			"evictions": cs.evictions,
			"memo": map[string]any{
				"hits": cs.memoHits, "misses": cs.memoMisses,
				"entries": cs.memoEntries, "bytes": cs.memoBytes,
			},
		},
		"last_error": s.lastErr.Load().(string),
	}
	if s.store != nil {
		payload["store"] = map[string]any{
			"ok":                s.storeOK.Load(),
			"warming":           s.warming.Load(),
			"log_bytes":         s.store.Size(),
			"recovered_records": s.recovery.records.Load(),
			"recovered_graphs":  s.recovery.graphs.Load(),
			"recovered_memos":   s.recovery.memos.Load(),
			"skipped_records":   s.recovery.skipped.Load(),
			"corrupt_records":   s.recovery.corrupt.Load(),
			"truncated_bytes":   s.recovery.truncated.Load(),
			"append_errors":     s.appendErrs.Load(),
			"compactions":       s.compacts.Load(),
		}
	}
	s.writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, shedf(s.cfg.DrainTimeout, "draining"))
		return
	}
	if s.warming.Load() {
		s.writeError(w, shedf(time.Second, "store recovery in progress"))
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// handleUpload is POST /v1/graphs: decode, validate, hash, open a Workspace
// and admit it into the byte-budgeted cache.  Ingestion rides the heavy gate
// — building and validating a million-vertex graph costs like an engine run.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, notFoundf("%s %s", r.Method, r.URL.Path))
		return
	}
	if s.draining.Load() {
		s.writeError(w, shedf(s.cfg.DrainTimeout, "draining"))
		return
	}
	if s.warming.Load() {
		s.writeError(w, shedf(time.Second, "store recovery in progress"))
		return
	}
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeError(w, classify(err))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, aerr := s.heavy.acquire(ctx)
	if aerr != nil {
		s.writeError(w, classify(aerr))
		return
	}
	defer release()

	ing, ierr := s.ingestGraph(body)
	if ierr != nil {
		s.writeError(w, classify(ierr))
		return
	}
	if e := s.cache.get(ing.id); e != nil {
		defer s.cache.release(e)
		s.writeJSON(w, http.StatusOK, s.graphInfo(e, true))
		return
	}
	// Durability before visibility: journal the graph first, so the moment a
	// concurrent identical upload can hit the cache entry below, the record
	// backing it is already on disk.  A failed append fails this request and
	// inserts nothing — the cache never holds a graph the journal does not.
	unpend := s.notePending(pendingGraphKey(ing.id))
	defer unpend()
	if perr := s.persist(ing.rec); perr != nil {
		s.writeError(w, perr)
		return
	}
	ws := core.NewWorkspace(ing.g)
	ws.SetSolverLimit(s.cfg.SolverLimit)
	e, _, cerr := s.cache.add(ing.id, ws, ws.FootprintBytes(s.cfg.SolverLimit))
	if cerr != nil {
		s.writeError(w, classify(cerr))
		return
	}
	defer s.cache.release(e)
	s.maybeCompact()
	s.writeJSON(w, http.StatusCreated, s.graphInfo(e, false))
}

// handleGraph routes /v1/graphs/{id} and /v1/graphs/{id}/{engine}.
func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/graphs/")
	id, engine, hasEngine := strings.Cut(rest, "/")
	if id == "" || strings.Contains(engine, "/") {
		s.writeError(w, notFoundf("%s", r.URL.Path))
		return
	}
	if s.warming.Load() {
		// A half-replayed cache would answer "not cached" for graphs the log
		// is about to restore; shed instead of lying.
		s.writeError(w, shedf(time.Second, "store recovery in progress"))
		return
	}
	if !hasEngine {
		if r.Method != http.MethodGet {
			s.writeError(w, notFoundf("%s %s", r.Method, r.URL.Path))
			return
		}
		e := s.cache.get(id)
		if e == nil {
			s.writeError(w, notFoundf("graph %s not cached (evicted or never uploaded)", id))
			return
		}
		defer s.cache.release(e)
		s.writeJSON(w, http.StatusOK, s.graphInfo(e, true))
		return
	}
	if r.Method != http.MethodPost {
		s.writeError(w, notFoundf("%s %s", r.Method, r.URL.Path))
		return
	}
	s.handleEngine(w, r, id, engine)
}

// handleEngine is POST /v1/graphs/{id}/{engine}: the admission, memoization
// and panic-isolation pipeline around runEngine.
func (s *Server) handleEngine(w http.ResponseWriter, r *http.Request, id, engine string) {
	class, known := engines[engine]
	if !known {
		s.writeError(w, notFoundf("unknown engine %q", engine))
		return
	}
	if s.draining.Load() {
		s.writeError(w, shedf(s.cfg.DrainTimeout, "draining"))
		return
	}
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeError(w, classify(err))
		return
	}

	e := s.cache.get(id)
	if e == nil {
		s.writeError(w, notFoundf("graph %s not cached (evicted or never uploaded)", id))
		return
	}
	defer s.cache.release(e)

	// Memoized responses replay without an admission slot: the engines are
	// deterministic, so a repeated request is a cache read, and cached reads
	// keep flowing even when the compute queues are saturated.
	reqHash := requestHash(engine, body)
	if cached, ok := s.cache.memoGet(e, reqHash); ok {
		w.Header().Set("X-Cdagd-Memo", "hit")
		s.writeRaw(w, http.StatusOK, cached)
		return
	}

	// Degradation order: shed the expensive engines first.  While the cheap
	// class is saturated past the threshold, heavy requests get an immediate
	// 503 + Retry-After instead of competing for the machine.
	if class == classHeavy && s.light.saturated(s.cfg.ShedThreshold) {
		s.writeError(w, shedf(s.light.retryAfter(), "shedding %s: light engine class saturated", engine))
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	g := s.light
	if class == classHeavy {
		g = s.heavy
	}
	release, aerr := g.acquire(ctx)
	if aerr != nil {
		s.writeError(w, classify(aerr))
		return
	}
	defer release()

	payload, rerr := s.runEngine(ctx, e.ws, engine, body)
	if rerr != nil {
		s.writeError(w, classify(rerr))
		return
	}
	buf, merr := json.Marshal(payload)
	if merr != nil {
		s.writeError(w, internalf("marshal response: %v", merr))
		return
	}
	// Journal the memo before it becomes replayable, mirroring the upload
	// path.  Oversized bodies are never memoized, so they are never journaled
	// either.  On append failure the response is NOT acknowledged and NOT
	// memoized: a retry recomputes and re-journals, so the cache never holds
	// a replayable body the journal does not.
	if s.storeActive() && int64(len(buf)) <= s.cfg.MaxMemoEntry {
		unpend := s.notePending(pendingMemoKey(id, reqHash))
		defer unpend()
		if perr := s.persist(store.Record{Kind: store.KindMemo, Key: id, Sub: reqHash, Value: buf}); perr != nil {
			s.writeError(w, perr)
			return
		}
	}
	s.cache.memoPut(e, reqHash, buf)
	s.maybeCompact()
	s.writeRaw(w, http.StatusOK, buf)
}

// requestContext derives the request's context with its effective deadline:
// the ?deadline_ms= parameter when present, the server default otherwise,
// both capped by the server-side maximum.  The base context is the request's
// own, which the server's BaseContext ties to the daemon lifecycle — a
// forced shutdown cancels every in-flight engine.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if raw := r.URL.Query().Get("deadline_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err == nil && ms > 0 {
			d = time.Duration(ms) * time.Millisecond
		}
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, limitf("request body exceeds %d bytes", mbe.Limit)
		}
		return nil, invalidf("read body: %v", err)
	}
	return body, nil
}

func (s *Server) graphInfo(e *wsEntry, cached bool) map[string]any {
	g := e.ws.Graph()
	return map[string]any{
		"id":              e.id,
		"name":            g.Name(),
		"vertices":        g.NumVertices(),
		"edges":           g.NumEdges(),
		"inputs":          g.NumInputs(),
		"outputs":         g.NumOutputs(),
		"footprint_bytes": e.footprint,
		"cached":          cached,
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, payload any) {
	buf, err := json.Marshal(payload)
	if err != nil {
		s.writeError(w, internalf("marshal response: %v", err))
		return
	}
	s.writeRaw(w, status, buf)
}

func (s *Server) writeRaw(w http.ResponseWriter, status int, buf []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf)
	w.Write([]byte("\n"))
}

// writeError renders a classified error: its HTTP status, a Retry-After
// header when the taxonomy calls for one, and a JSON body with the stable
// class key.  Internal-class errors are additionally recorded as the
// daemon's last error for /healthz.
func (s *Server) writeError(w http.ResponseWriter, e *Error) {
	if errors.Is(e.Class, ErrInternal) {
		s.lastErr.Store(e.Error())
	}
	if e.Retry > 0 {
		secs := int64(e.Retry / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	body := map[string]any{"error": map[string]any{
		"class":  classKey(e),
		"detail": e.Detail,
	}}
	if e.Retry > 0 {
		body["error"].(map[string]any)["retry_after_ms"] = e.Retry.Milliseconds()
	}
	buf, _ := json.Marshal(body)
	s.writeRaw(w, httpStatus(e), buf)
}

// Run listens on cfg.Addr and serves until ctx is cancelled, then drains:
// the listener closes, in-flight requests get DrainTimeout to finish, and
// whatever is still running afterwards has its context force-cancelled (the
// engines all honor cancellation promptly).  Returns nil on a clean drain.
// ready, when non-nil, is called with the bound address once listening.
func (s *Server) Run(ctx context.Context, ready func(addr net.Addr)) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	if ready != nil {
		ready(ln.Addr())
	}
	return s.Serve(ctx, ln)
}

// Serve runs the daemon on an existing listener; see Run.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	// Every request context descends from lifeCtx, so the forced phase of the
	// drain cancels whatever Shutdown's grace period could not wait out.
	//cdaglint:allow ctxflow request contexts must outlive the accept ctx so the drain can force-cancel them after it ends
	lifeCtx, forceCancel := context.WithCancel(context.Background())
	defer forceCancel()
	hs := &http.Server{
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return lifeCtx },
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		s.draining.Store(true)
		//cdaglint:allow ctxflow the drain grace period starts exactly when the serve ctx is already cancelled
		shCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		err := hs.Shutdown(shCtx)
		if err != nil {
			// Grace period expired with requests still running: cancel their
			// contexts and close the connections out from under them.
			forceCancel()
			err = hs.Close()
		}
		done <- err
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		s.Close()
		return err
	}
	err := <-done
	// The drain is complete: flush the journal's final batch and release it.
	if cerr := s.Close(); err == nil {
		err = cerr
	}
	return err
}
