package serve

import (
	"fmt"
	"sync"
	"testing"

	"cdagio/internal/core"
	"cdagio/internal/gen"
)

// TestCacheAccountingUnderChurn hammers one wsCache from many goroutines —
// add, get, memoPut, drop, release — while a checker repeatedly asserts the
// byte-accounting invariant: used == Σ(footprint + memo bytes) over resident
// entries, with the memo occupancy mirrors in agreement.  Run under -race
// this is the satellite-3 gate on the cache's bookkeeping.
func TestCacheAccountingUnderChurn(t *testing.T) {
	const (
		workers   = 8
		iters     = 400
		footprint = 1000
		ids       = 16 // budget fits ~10, so adds constantly evict
	)
	c := newWSCache(10*footprint+500, 200)
	ws := core.NewWorkspace(gen.Chain(4))

	var wg, checker sync.WaitGroup
	stop := make(chan struct{})
	checkErr := make(chan error, 1)
	checker.Add(1)
	go func() {
		defer checker.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.verifyAccounting(); err != nil {
				select {
				case checkErr <- err:
				default:
				}
				return
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("g%d", (w+i)%ids)
				e, _, err := c.add(id, ws, footprint)
				if err != nil {
					continue // everything else pinned; churn on
				}
				// Bodies straddle maxMemoEntry (200) so both the stored and
				// the rejected paths run.
				c.memoPut(e, fmt.Sprintf("h%d", i%4), make([]byte, (w*37+i*13)%256))
				if other := c.get(fmt.Sprintf("g%d", i%ids)); other != nil {
					c.memoGet(other, "h0")
					c.release(other)
				}
				if (w+i)%11 == 0 {
					c.drop(e) // doomed while still pinned by us
				}
				c.release(e)
			}
		}(w)
	}

	wg.Wait()
	close(stop)
	checker.Wait()
	select {
	case err := <-checkErr:
		t.Fatalf("invariant broken mid-churn: %v", err)
	default:
	}
	if err := c.verifyAccounting(); err != nil {
		t.Fatalf("invariant broken at rest: %v", err)
	}
	cs := c.stats()
	if cs.evictions == 0 {
		t.Fatal("churn produced no evictions; the test budget is mis-sized")
	}
	if cs.usedBytes > cs.budget {
		t.Fatalf("used %d exceeds budget %d", cs.usedBytes, cs.budget)
	}
}

// TestCacheDropSemantics pins down drop's contract directly: the entry stops
// being findable immediately, survives until its last pin, and its bytes are
// credited back exactly once.
func TestCacheDropSemantics(t *testing.T) {
	c := newWSCache(1<<20, 1<<10)
	ws := core.NewWorkspace(gen.Chain(4))
	e, inserted, err := c.add("a", ws, 100)
	if err != nil || !inserted {
		t.Fatalf("add: inserted=%v err=%v", inserted, err)
	}
	if !c.memoPut(e, "h", make([]byte, 50)) {
		t.Fatal("memoPut refused a fitting body")
	}
	second := c.get("a")
	if second == nil {
		t.Fatal("get before drop missed")
	}

	c.drop(e)
	if c.get("a") != nil {
		t.Fatal("dropped entry still findable")
	}
	if cs := c.stats(); cs.usedBytes != 150 {
		t.Fatalf("bytes released before last pin: used=%d", cs.usedBytes)
	}
	c.release(second)
	c.release(e)
	if cs := c.stats(); cs.usedBytes != 0 || cs.memoEntries != 0 {
		t.Fatalf("bytes not released after last pin: %+v", cs)
	}
	if err := c.verifyAccounting(); err != nil {
		t.Fatalf("accounting after drop: %v", err)
	}
	// A fresh add under the same id is independent of the corpse.
	if _, inserted, err := c.add("a", ws, 100); err != nil || !inserted {
		t.Fatalf("re-add after drop: inserted=%v err=%v", inserted, err)
	}
}
