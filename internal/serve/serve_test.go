package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cdagio/internal/cdag"
	"cdagio/internal/core"
	"cdagio/internal/fault"
	"cdagio/internal/gen"
)

// testServer mounts a daemon on an httptest server.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// do issues one request and returns the status, headers and decoded body.
func do(t *testing.T, method, url, body string) (int, http.Header, map[string]any) {
	t.Helper()
	status, hdr, raw := doRaw(t, method, url, body)
	var payload map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &payload); err != nil {
			t.Fatalf("%s %s: undecodable body %q: %v", method, url, raw, err)
		}
	}
	return status, hdr, payload
}

func doRaw(t *testing.T, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: read body: %v", method, url, err)
	}
	return resp.StatusCode, resp.Header, raw
}

// upload ingests a generator spec and returns the graph ID.
func upload(t *testing.T, base, spec string) string {
	t.Helper()
	status, _, payload := do(t, "POST", base+"/v1/graphs", spec)
	if status != http.StatusCreated && status != http.StatusOK {
		t.Fatalf("upload %s: status %d, body %v", spec, status, payload)
	}
	id, _ := payload["id"].(string)
	if !strings.HasPrefix(id, "sha256:") {
		t.Fatalf("upload %s: bad id %q", spec, id)
	}
	return id
}

func errClass(t *testing.T, payload map[string]any) string {
	t.Helper()
	e, _ := payload["error"].(map[string]any)
	if e == nil {
		t.Fatalf("no error object in %v", payload)
	}
	class, _ := e["class"].(string)
	return class
}

func TestUploadAndAllEngines(t *testing.T) {
	_, hs := testServer(t, Config{})
	id := upload(t, hs.URL, `{"gen":{"kind":"chain","n":32}}`)

	// Re-upload dedupes onto the same content hash.
	status, _, payload := do(t, "POST", hs.URL+"/v1/graphs", `{"gen":{"kind":"Chain","n":32,"k":0}}`)
	if status != http.StatusOK || payload["id"] != id {
		t.Fatalf("re-upload: status %d id %v, want 200 %s", status, payload["id"], id)
	}

	// Metadata.
	status, _, payload = do(t, "GET", hs.URL+"/v1/graphs/"+id, "")
	if status != http.StatusOK || payload["vertices"].(float64) != 32 {
		t.Fatalf("metadata: status %d body %v", status, payload)
	}

	// Every engine answers on the cached Workspace.
	calls := []struct {
		engine, body string
		check        func(map[string]any) bool
	}{
		{"wmax", `{}`, func(m map[string]any) bool { return m["wmax"].(float64) == 1 }},
		{"wavefront", `{"vertex":5}`, func(m map[string]any) bool { return m["wavefront"].(float64) >= 1 }},
		{"dominator", `{"targets":[31]}`, func(m map[string]any) bool { return m["size"].(float64) >= 1 }},
		{"play", `{"s":2}`, func(m map[string]any) bool { return m["io"].(float64) >= 2 }},
		{"analyze", `{"s":2}`, func(m map[string]any) bool { return m["measured_io"].(float64) >= 2 }},
		{"simulate", `{"nodes":1,"fast_words":4}`, func(m map[string]any) bool { return m["loads"] != nil }},
		{"sweep", `{"jobs":[{"nodes":1,"fast_words":4},{"nodes":1,"fast_words":8}]}`,
			func(m map[string]any) bool { return len(m["results"].([]any)) == 2 }},
		{"prbw", `{"p":1,"s1":4,"sl":1024}`, func(m map[string]any) bool { return m["computes"] != nil }},
	}
	for _, c := range calls {
		status, _, payload := do(t, "POST", hs.URL+"/v1/graphs/"+id+"/"+c.engine, c.body)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d body %v", c.engine, status, payload)
		}
		if !c.check(payload) {
			t.Fatalf("%s: unexpected payload %v", c.engine, payload)
		}
	}

	// The exact search needs a small graph.
	small := upload(t, hs.URL, `{"gen":{"kind":"chain","n":8}}`)
	status, _, payload = do(t, "POST", hs.URL+"/v1/graphs/"+small+"/optimal", `{"s":2}`)
	if status != http.StatusOK || payload["optimal_io"].(float64) < 2 {
		t.Fatalf("optimal: status %d body %v", status, payload)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	_, hs := testServer(t, Config{
		JSONLimits: cdag.JSONLimits{MaxVertices: 64, MaxEdges: 256, MaxLabelBytes: 1 << 12},
	})
	id := upload(t, hs.URL, `{"gen":{"kind":"chain","n":16}}`)

	cases := []struct {
		name, method, path, body string
		status                   int
		class                    string
	}{
		{"malformed body", "POST", "/v1/graphs", `{"gen":`, 400, "invalid_input"},
		{"unknown field", "POST", "/v1/graphs", `{"bogus":1}`, 400, "invalid_input"},
		{"both graph and gen", "POST", "/v1/graphs", `{"graph":{"vertices":1,"edges":[],"inputs":[0],"outputs":[0]},"gen":{"kind":"chain","n":2}}`, 400, "invalid_input"},
		{"unknown generator", "POST", "/v1/graphs", `{"gen":{"kind":"mystery","n":4}}`, 400, "invalid_input"},
		{"generator panic", "POST", "/v1/graphs", `{"gen":{"kind":"chain","n":0}}`, 400, "invalid_input"},
		{"oversized upload", "POST", "/v1/graphs", `{"graph":{"vertices":100000,"edges":[],"inputs":[],"outputs":[]}}`, 413, "resource_limit"},
		{"oversized gen spec", "POST", "/v1/graphs", `{"gen":{"kind":"chain","n":2000000000}}`, 413, "resource_limit"},
		{"oversized gen matmul", "POST", "/v1/graphs", `{"gen":{"kind":"matmul","n":100000}}`, 413, "resource_limit"},
		{"cyclic graph", "POST", "/v1/graphs", `{"graph":{"vertices":2,"edges":[[0,1],[1,0]],"inputs":[],"outputs":[1]}}`, 400, "invalid_input"},
		{"edge out of range", "POST", "/v1/graphs", `{"graph":{"vertices":2,"edges":[[0,7]],"inputs":[0],"outputs":[1]}}`, 400, "invalid_input"},
		{"unknown graph", "POST", "/v1/graphs/sha256:beef/wmax", `{}`, 404, "not_found"},
		{"unknown engine", "POST", "/v1/graphs/" + id + "/teleport", `{}`, 404, "not_found"},
		{"bad engine params", "POST", "/v1/graphs/" + id + "/wavefront", `{"vertex":99}`, 400, "invalid_input"},
		{"bad variant", "POST", "/v1/graphs/" + id + "/play", `{"s":2,"variant":"green"}`, 400, "invalid_input"},
		{"s too small", "POST", "/v1/graphs/" + id + "/optimal", `{"s":0}`, 400, "invalid_input"},
		{"exact search too large", "POST", "/v1/graphs/" + id + "/optimal", `{"s":2,"max_states":10}`, 413, "resource_limit"},
		{"sweep without jobs", "POST", "/v1/graphs/" + id + "/sweep", `{"jobs":[]}`, 400, "invalid_input"},
		{"wrong method", "DELETE", "/v1/graphs/" + id, "", 404, "not_found"},
	}
	for _, c := range cases {
		status, _, payload := do(t, c.method, hs.URL+c.path, c.body)
		if status != c.status {
			t.Errorf("%s: status %d, want %d (body %v)", c.name, status, c.status, payload)
			continue
		}
		if got := errClass(t, payload); got != c.class {
			t.Errorf("%s: class %q, want %q", c.name, got, c.class)
		}
	}
}

// TestWMaxWorkerPanicIsolation is the core acceptance test: a panic forced
// inside a w^max worker mid-request surfaces as a structured 500, and
// subsequent requests against the same cached Workspace return bit-identical
// results.
func TestWMaxWorkerPanicIsolation(t *testing.T) {
	_, hs := testServer(t, Config{})
	id := upload(t, hs.URL, `{"gen":{"kind":"tree","n":64}}`)
	wmaxURL := hs.URL + "/v1/graphs/" + id + "/wmax"

	// Baseline before any fault: this also primes the memo.
	status, _, baseline := doRaw(t, "POST", wmaxURL, `{"concurrency":4}`)
	if status != http.StatusOK {
		t.Fatalf("baseline wmax: status %d body %s", status, baseline)
	}

	// Crash a worker mid-scan.  The request body differs by whitespace so the
	// memo cannot mask the engine run.
	restore := FaultPoint(func(point string) {
		if point == fault.PointWMaxWorker {
			panic("injected worker crash")
		}
	})
	status, _, payload := do(t, "POST", wmaxURL, `{"concurrency": 4}`)
	restore()
	if status != http.StatusInternalServerError {
		t.Fatalf("faulted wmax: status %d body %v, want 500", status, payload)
	}
	if got := errClass(t, payload); got != "internal" {
		t.Fatalf("faulted wmax: class %q, want internal", got)
	}
	detail := payload["error"].(map[string]any)["detail"].(string)
	if !strings.Contains(detail, "graphalg.wmax.worker") {
		t.Fatalf("faulted wmax: detail %q does not name the fault point", detail)
	}

	// /healthz reports the crash as the last error and stays 200.
	status, _, health := do(t, "GET", hs.URL+"/healthz", "")
	if status != http.StatusOK || !strings.Contains(health["last_error"].(string), "graphalg.wmax.worker") {
		t.Fatalf("healthz after crash: status %d body %v", status, health)
	}

	// The same Workspace keeps serving, bit-identically: a fresh computation
	// (another uncached body spelling) and the memoized baseline must agree
	// byte for byte.
	status, _, fresh := doRaw(t, "POST", wmaxURL, `{ "concurrency":4}`)
	if status != http.StatusOK {
		t.Fatalf("post-crash wmax: status %d body %s", status, fresh)
	}
	if !bytes.Equal(fresh, baseline) {
		t.Fatalf("post-crash wmax differs from baseline: %s vs %s", fresh, baseline)
	}
	status, hdr, memoed := doRaw(t, "POST", wmaxURL, `{"concurrency":4}`)
	if status != http.StatusOK || hdr.Get("X-Cdagd-Memo") != "hit" {
		t.Fatalf("memoized wmax: status %d memo %q", status, hdr.Get("X-Cdagd-Memo"))
	}
	if !bytes.Equal(memoed, baseline) {
		t.Fatalf("memoized wmax differs from baseline")
	}
}

// TestAdmissionControl saturates the light class with requests parked on a
// fault hook and verifies: queue overflow is 429 + Retry-After, heavy
// engines are shed with 503 + Retry-After, /healthz stays live and reports
// the congestion, and the parked requests complete once unblocked.
func TestAdmissionControl(t *testing.T) {
	_, hs := testServer(t, Config{LightInFlight: 1, LightQueue: 1, ShedThreshold: 0.9})
	id := upload(t, hs.URL, `{"gen":{"kind":"chain","n":32}}`)
	sweepURL := hs.URL + "/v1/graphs/" + id + "/sweep"

	entered := make(chan struct{}, 8)
	block := make(chan struct{})
	restore := FaultPoint(func(point string) {
		if point == fault.PointMemsimSweepWorker {
			entered <- struct{}{}
			<-block
		}
	})
	defer restore()

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	post := func(body string) {
		req, _ := http.NewRequest("POST", sweepURL+"?deadline_ms=30000", strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			results <- result{0, []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		results <- result{resp.StatusCode, raw}
	}
	// First request takes the only in-flight slot and parks on the hook.
	go post(`{"jobs":[{"nodes":1,"fast_words":4}]}`)
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("first sweep never reached the worker")
	}
	// Second request fills the queue.
	go post(`{"jobs":[{"nodes":1,"fast_words":8}]}`)
	waitFor(t, func() bool {
		_, _, h := do(t, "GET", hs.URL+"/healthz", "")
		light := h["light"].(map[string]any)
		return light["queued"].(float64) == 1
	}, "second sweep never queued")

	// Third light request overflows the queue: 429 + Retry-After.
	status, hdr, payload := do(t, "POST", sweepURL, `{"jobs":[{"nodes":1,"fast_words":16}]}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow: status %d body %v, want 429", status, payload)
	}
	if errClass(t, payload) != "overloaded" || hdr.Get("Retry-After") == "" {
		t.Fatalf("overflow: class %q Retry-After %q", errClass(t, payload), hdr.Get("Retry-After"))
	}

	// Heavy engines are shed while the light class is saturated: 503.
	status, hdr, payload = do(t, "POST", hs.URL+"/v1/graphs/"+id+"/wmax", `{}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("shed: status %d body %v, want 503", status, payload)
	}
	if errClass(t, payload) != "overloaded" || hdr.Get("Retry-After") == "" {
		t.Fatalf("shed: class %q Retry-After %q", errClass(t, payload), hdr.Get("Retry-After"))
	}

	// Liveness endpoint never queues behind engine traffic.
	status, _, health := do(t, "GET", hs.URL+"/healthz", "")
	if status != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz under load: status %d body %v", status, health)
	}

	// Unblock: both parked sweeps must complete successfully.
	close(block)
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.status != http.StatusOK {
				t.Fatalf("parked sweep %d: status %d body %s", i, r.status, r.body)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("parked sweeps never completed")
		}
	}
}

// TestNoQueueRejectsImmediately: a negative queue depth disables queueing,
// so the moment the in-flight slots are taken, further requests in the class
// get an immediate 429 instead of parking until their deadlines.
func TestNoQueueRejectsImmediately(t *testing.T) {
	_, hs := testServer(t, Config{LightInFlight: 1, LightQueue: -1})
	id := upload(t, hs.URL, `{"gen":{"kind":"chain","n":32}}`)
	sweepURL := hs.URL + "/v1/graphs/" + id + "/sweep"

	entered := make(chan struct{}, 1)
	block := make(chan struct{})
	restore := FaultPoint(func(point string) {
		if point == fault.PointMemsimSweepWorker {
			entered <- struct{}{}
			<-block
		}
	})
	defer restore()

	done := make(chan result2, 1)
	go func() {
		status, _, raw := rawPost(sweepURL+"?deadline_ms=30000", `{"jobs":[{"nodes":1,"fast_words":4}]}`)
		done <- result2{status, raw}
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("first sweep never reached the worker")
	}

	status, hdr, payload := do(t, "POST", sweepURL, `{"jobs":[{"nodes":1,"fast_words":8}]}`)
	if status != http.StatusTooManyRequests || errClass(t, payload) != "overloaded" || hdr.Get("Retry-After") == "" {
		t.Fatalf("no-queue overflow: status %d class %q Retry-After %q, want immediate 429",
			status, errClass(t, payload), hdr.Get("Retry-After"))
	}

	close(block)
	select {
	case r := <-done:
		if r.status != http.StatusOK {
			t.Fatalf("parked sweep: status %d body %s", r.status, r.raw)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked sweep never completed")
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestDeadlineExceededIs504(t *testing.T) {
	_, hs := testServer(t, Config{})
	id := upload(t, hs.URL, `{"gen":{"kind":"chain","n":32}}`)

	// The hook stalls the sweep worker well past the request deadline; the
	// engine notices the expired context right after and returns ctx.Err().
	restore := FaultPoint(func(point string) {
		if point == fault.PointMemsimSweepWorker {
			time.Sleep(300 * time.Millisecond)
		}
	})
	defer restore()
	status, _, payload := do(t, "POST",
		hs.URL+"/v1/graphs/"+id+"/sweep?deadline_ms=50", `{"jobs":[{"nodes":1,"fast_words":4}]}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("deadline: status %d body %v, want 504", status, payload)
	}
	if got := errClass(t, payload); got != "deadline" {
		t.Fatalf("deadline: class %q, want deadline", got)
	}
}

func TestCacheAdmissionAndEviction(t *testing.T) {
	// Budget sized from the real footprint estimate: it holds one chain-300
	// workspace with headroom but not two, and is far below a large stencil.
	fp := core.NewWorkspace(gen.Chain(300)).FootprintBytes(1)
	s, hs := testServer(t, Config{CacheBudget: fp + fp/2, SolverLimit: 1})

	// A graph whose estimated footprint exceeds the whole budget is rejected
	// with 413 before it can OOM the cache.
	status, _, payload := do(t, "POST", hs.URL+"/v1/graphs", `{"gen":{"kind":"jacobi","dim":1,"n":256,"steps":64}}`)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized graph: status %d body %v, want 413", status, payload)
	}
	if got := errClass(t, payload); got != "resource_limit" {
		t.Fatalf("oversized graph: class %q, want resource_limit", got)
	}

	// Two graphs that individually fit but not together: the second upload
	// evicts the first (LRU, unpinned), whose ID then 404s.
	idA := upload(t, hs.URL, `{"gen":{"kind":"chain","n":300}}`)
	idB := upload(t, hs.URL, `{"gen":{"kind":"chain","n":301}}`)
	if idA == idB {
		t.Fatal("distinct graphs share an ID")
	}
	status, _, _ = do(t, "GET", hs.URL+"/v1/graphs/"+idB, "")
	if status != http.StatusOK {
		t.Fatalf("graph B evicted unexpectedly: %d", status)
	}
	status, _, payload = do(t, "GET", hs.URL+"/v1/graphs/"+idA, "")
	if status != http.StatusNotFound {
		t.Fatalf("graph A: status %d body %v, want 404 after eviction", status, payload)
	}
	if cs := s.cache.stats(); cs.graphs != 1 {
		t.Fatalf("cache holds %d graphs, want 1", cs.graphs)
	}
}

// TestGracefulDrain cancels the daemon's context while a request is in
// flight and verifies the drain: new requests are refused with 503, the
// in-flight request completes, and Serve returns nil within the deadline.
func TestGracefulDrain(t *testing.T) {
	s, err := New(Config{DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	id := upload(t, base, `{"gen":{"kind":"chain","n":32}}`)

	entered := make(chan struct{}, 1)
	block := make(chan struct{})
	restore := FaultPoint(func(point string) {
		if point == fault.PointMemsimSweepWorker {
			entered <- struct{}{}
			<-block
		}
	})
	defer restore()

	inflight := make(chan result2, 1)
	go func() {
		status, _, raw := rawPost(base+"/v1/graphs/"+id+"/sweep?deadline_ms=30000", `{"jobs":[{"nodes":1,"fast_words":4}]}`)
		inflight <- result2{status, raw}
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight sweep never reached the worker")
	}

	// Begin the drain mid-request.
	cancel()
	waitFor(t, func() bool { return s.draining.Load() }, "daemon never started draining")

	// New work is refused while draining: either the listener is already
	// closed (connection error) or a still-open connection gets the 503 shed.
	if status, _, raw := rawPost(base+"/v1/graphs/"+id+"/wavefront", `{"vertex":3}`); status != 0 && status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d body %s, want refusal or 503", status, raw)
	}

	// Let the in-flight request finish: it must succeed, and Serve must then
	// return nil well within the drain deadline.
	close(block)
	select {
	case r := <-inflight:
		if r.status != http.StatusOK {
			t.Fatalf("in-flight request during drain: status %d body %s", r.status, r.raw)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

type result2 struct {
	status int
	raw    []byte
}

func rawPost(url, body string) (int, http.Header, []byte) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, []byte(err.Error())
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, raw
}

// TestReadyzFlipsWhileDraining exercises the readiness and liveness surface
// of a draining daemon directly on the handler (the real drain closes the
// listener, so this is not reliably observable over fresh connections).
func TestReadyzFlipsWhileDraining(t *testing.T) {
	s, hs := testServer(t, Config{})
	if status, _, p := do(t, "GET", hs.URL+"/readyz", ""); status != http.StatusOK {
		t.Fatalf("readyz before drain: status %d body %v", status, p)
	}
	s.draining.Store(true)
	status, hdr, payload := do(t, "GET", hs.URL+"/readyz", "")
	if status != http.StatusServiceUnavailable || errClass(t, payload) != "overloaded" || hdr.Get("Retry-After") == "" {
		t.Fatalf("readyz while draining: status %d headers %v body %v", status, hdr, payload)
	}
	status, _, health := do(t, "GET", hs.URL+"/healthz", "")
	if status != http.StatusOK || health["status"] != "draining" {
		t.Fatalf("healthz while draining: status %d body %v", status, health)
	}
}

func TestUploadBodyTooLarge(t *testing.T) {
	_, hs := testServer(t, Config{MaxBodyBytes: 128})
	big := fmt.Sprintf(`{"gen":{"kind":"chain","n":8,"stencil":%q}}`, strings.Repeat("x", 4096))
	status, _, payload := do(t, "POST", hs.URL+"/v1/graphs", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d body %v, want 413", status, payload)
	}
	if got := errClass(t, payload); got != "resource_limit" {
		t.Fatalf("oversized body: class %q, want resource_limit", got)
	}
}
