package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// TestFreshDaemonResponsesAreByteStable pins the wire-level determinism
// contract: two freshly started daemons answering the same request sequence
// for the first time (nothing memoized, nothing recovered) must produce
// byte-identical response bodies.  encoding/json sorts map keys, so any
// divergence here means a response leaked map-iteration order, goroutine
// scheduling, or another ambient source into its payload.
func TestFreshDaemonResponsesAreByteStable(t *testing.T) {
	const spec = `{"gen":{"kind":"jacobi","dim":2,"n":4,"steps":2}}`
	// Per-graph requests issued after the upload; an empty path is the
	// metadata GET.  The last two pin error bodies, not just successes.
	requests := []struct {
		name, method, path, body string
	}{
		{"reupload", "POST", "", spec},
		{"metadata", "GET", "", ""},
		{"wmax", "POST", "/wmax", `{}`},
		{"wavefront", "POST", "/wavefront", `{"vertex":7}`},
		{"analyze", "POST", "/analyze", `{"s":3}`},
		{"play", "POST", "/play", `{"s":3}`},
		{"simulate", "POST", "/simulate", `{"nodes":1,"fast_words":8}`},
		{"sweep", "POST", "/sweep", `{"jobs":[{"nodes":1,"fast_words":4},{"nodes":1,"fast_words":8}]}`},
		{"prbw", "POST", "/prbw", `{"p":1,"s1":4,"sl":1024}`},
		{"bad-vertex", "POST", "/wavefront", `{"vertex":9999}`},
		{"bad-json", "POST", "/analyze", `{"s":`},
	}

	// run drives one fresh daemon through the full sequence and returns the
	// raw response bodies in request order, upload first.
	run := func(t *testing.T) [][]byte {
		t.Helper()
		_, hs := testServer(t, Config{})
		status, _, raw := doRaw(t, "POST", hs.URL+"/v1/graphs", spec)
		if status != http.StatusCreated {
			t.Fatalf("upload: status %d body %s", status, raw)
		}
		var up struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(raw, &up); err != nil || up.ID == "" {
			t.Fatalf("upload: no id in body %s (%v)", raw, err)
		}
		bodies := [][]byte{raw}
		for _, r := range requests {
			var url string
			if r.name == "reupload" {
				url = hs.URL + "/v1/graphs"
			} else {
				url = hs.URL + "/v1/graphs/" + up.ID + r.path
			}
			_, _, raw := doRaw(t, r.method, url, r.body)
			bodies = append(bodies, raw)
		}
		return bodies
	}

	first := run(t)
	second := run(t)
	names := append([]string{"upload"}, func() []string {
		var ns []string
		for _, r := range requests {
			ns = append(ns, r.name)
		}
		return ns
	}()...)
	for i := range first {
		if !bytes.Equal(first[i], second[i]) {
			t.Errorf("%s: response bodies diverged across fresh daemons:\n  daemon A: %s\n  daemon B: %s",
				names[i], first[i], second[i])
		}
	}
}
