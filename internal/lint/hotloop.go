package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// HotLoopAnalyzer enforces the PR-4 hoisted-CSR convention in the hot
// packages: a loop body must not call g.Succ/g.Pred (or their deprecated
// Successors/Predecessors aliases) — each call re-derives the CSR row bounds
// per iteration, which is exactly the per-step overhead the hoisted
// SuccessorCSR/PredecessorCSR rows were introduced to eliminate.  Passing
// g.Succ as a method value is flagged too, because it smuggles the same
// per-call cost into some other function's loop where no analyzer can see
// the receiver anymore.
var HotLoopAnalyzer = &analysis.Analyzer{
	Name: "hotloop",
	Doc: "flags cdag.Graph Succ/Pred calls inside loops of hot packages; " +
		"hoist SuccessorCSR/PredecessorCSR rows before the loop instead",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runHotLoop,
}

// adjacencyMethods are the per-vertex adjacency accessors the convention
// covers, mapped to the hoisted accessor the diagnostic recommends.
var adjacencyMethods = map[string]string{
	"Succ":         "SuccessorCSR",
	"Pred":         "PredecessorCSR",
	"Successors":   "SuccessorCSR",
	"Predecessors": "PredecessorCSR",
}

func runHotLoop(pass *analysis.Pass) (any, error) {
	if !inPackages(pass, hotPackages) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// callFuns remembers the SelectorExpr of every adjacency call so the
	// method-value sweep below can tell g.Succ(v) (covered by the loop rule)
	// from a bare g.Succ escaping as a func value (always flagged).
	callFuns := map[*ast.SelectorExpr]bool{}

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isGraphAdjacency(pass, sel) {
			return true
		}
		callFuns[sel] = true
		if loop := enclosingPerIterationLoop(stack); loop != nil {
			reportf(pass, call,
				"%s called inside a loop in hot package %s: hoist the %s row outside the loop (PR-4 convention)",
				sel.Sel.Name, pkgBase(pass.Pkg.Path()), adjacencyMethods[sel.Sel.Name])
		}
		return true
	})

	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		if callFuns[sel] || !isGraphAdjacency(pass, sel) {
			return
		}
		reportf(pass, sel,
			"%s used as a method value in hot package %s: it hides a per-call row lookup inside the callee's loop; pass hoisted %s slices instead",
			sel.Sel.Name, pkgBase(pass.Pkg.Path()), adjacencyMethods[sel.Sel.Name])
	})
	return nil, nil
}

// isGraphAdjacency reports whether sel selects one of the adjacency methods
// of the CDAG graph type (a named type Graph declared in a package whose
// basename is cdag).
func isGraphAdjacency(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if _, covered := adjacencyMethods[sel.Sel.Name]; !covered {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok {
		return false
	}
	fn, ok := obj.(*types.Func)
	if ok && fn.Pkg() != nil && pkgBase(fn.Pkg().Path()) == "cdag" {
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			return false
		}
		t := recv.Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		named, isNamed := t.(*types.Named)
		return isNamed && named.Obj().Name() == "Graph"
	}
	return false
}

// enclosingPerIterationLoop returns the innermost for/range statement whose
// per-iteration region contains the node at the top of the stack, or nil.
// The once-evaluated parts of a loop (a for statement's Init, a range
// statement's operand) do not count — hoisting a call there is precisely
// what the convention asks for.
func enclosingPerIterationLoop(stack []ast.Node) ast.Node {
	node := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.ForStmt:
			if s.Init == nil || !within(node, s.Init) {
				return s
			}
		case *ast.RangeStmt:
			if !within(node, s.X) {
				return s
			}
		}
		node = stack[i]
	}
	return nil
}

// within reports whether node lies inside container's source range.
func within(node, container ast.Node) bool {
	return node.Pos() >= container.Pos() && node.End() <= container.End()
}
