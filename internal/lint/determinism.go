package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DeterminismAnalyzer guards the bit-identical-results contract of the engine
// packages: every equivalence suite in the repository pins engine output
// across modes, worker counts and restarts, so any ambient nondeterminism
// source inside those packages is a reproducibility bug even when today's
// tests happen to pass.  It flags
//
//   - time.Now (wall clock in a pure computation),
//   - package-level math/rand and math/rand/v2 functions (process-global
//     generator; seeded rand.New(...) streams are fine),
//   - select statements with more than one communication case (the runtime
//     picks a ready case uniformly at random),
//   - ranging over a map while appending to a slice or writing to an
//     encoder/writer (iteration order leaks into ordered output; collect and
//     sort the keys first).
var DeterminismAnalyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flags nondeterminism sources (time.Now, global math/rand, multi-case " +
		"select, map-range into ordered output) in bit-identical engine packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDeterminism,
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	if !inPackages(pass, enginePackages) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{
		(*ast.CallExpr)(nil),
		(*ast.SelectStmt)(nil),
	}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNondetCall(pass, n)
		case *ast.SelectStmt:
			checkSelect(pass, n)
		}
	})
	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if push {
			checkMapRange(pass, n.(*ast.RangeStmt), stack)
		}
		return true
	})
	return nil, nil
}

func checkNondetCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Only package-level functions: a selector whose operand is the package
	// name.  Methods on a seeded *rand.Rand live in the same package but are
	// deterministic given the seed.
	if id, ok := sel.X.(*ast.Ident); !ok {
		return
	} else if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); !isPkg {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			reportf(pass, call,
				"time.Now in engine package %s: engine results must be bit-identical, derive timings outside the engine",
				pkgBase(pass.Pkg.Path()))
		}
	case "math/rand", "math/rand/v2":
		if strings.HasPrefix(fn.Name(), "New") {
			return // explicit seeded generators are the sanctioned form
		}
		reportf(pass, call,
			"global %s.%s in engine package %s: use an explicitly seeded rand.New(rand.NewSource(seed)) stream",
			pkgBase(fn.Pkg().Path()), fn.Name(), pkgBase(pass.Pkg.Path()))
	}
}

func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	comm := 0
	for _, clause := range sel.Body.List {
		if c, ok := clause.(*ast.CommClause); ok && c.Comm != nil {
			comm++
		}
	}
	if comm > 1 {
		reportf(pass, sel,
			"select over %d channels in engine package %s: the runtime picks a ready case at random; merge results deterministically instead",
			comm, pkgBase(pass.Pkg.Path()))
	}
}

// orderedSinkMethods are method names whose call inside a map-range body
// means iteration order reaches ordered output: stream encoders and writers.
var orderedSinkMethods = set(
	"Encode", "Marshal", "MarshalIndent",
	"Write", "WriteString", "WriteByte", "WriteRune",
	"Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println",
)

func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) {
	if rng.X == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	appends, sink := false, ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if isBuiltinAppend(pass, fun) {
				appends = true
			}
		case *ast.SelectorExpr:
			if sink == "" && orderedSinkMethods[fun.Sel.Name] {
				sink = fun.Sel.Name
			}
		}
		return true
	})
	switch {
	case sink != "":
		// Writing to a stream mid-range is unfixable by a later sort.
		reportf(pass, rng,
			"map iteration writes to an ordered sink (%s) in engine package %s: iteration order is nondeterministic; sort the keys first",
			sink, pkgBase(pass.Pkg.Path()))
	case appends && !sortsAfter(pass, rng, stack):
		// The sanctioned collect-keys-then-sort idiom appends inside the
		// range and sorts right after it; only an unsorted append leaks
		// iteration order.
		reportf(pass, rng,
			"map iteration appends into a slice in engine package %s and nothing sorts it afterwards: iteration order is nondeterministic",
			pkgBase(pass.Pkg.Path()))
	}
}

// sortsAfter reports whether, in the function enclosing rng, some sort call
// (package sort or slices) executes after the range loop — the tail half of
// the collect-then-sort idiom.
func sortsAfter(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) bool {
	var body *ast.BlockStmt
	for i := len(stack) - 1; i >= 0 && body == nil; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			body = f.Body
		case *ast.FuncLit:
			body = f.Body
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isBuiltinAppend(pass *analysis.Pass, id *ast.Ident) bool {
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
