package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// FaultPointAnalyzer keeps the chaos-testing surface honest.  A fault point
// that exists only as a string literal at its call site can be typo'd — the
// chaos test that "covers" it then hooks a name nothing ever fires, and the
// coverage is silently imaginary.  The analyzer therefore requires
//
//   - every label passed to fault.Inject / fault.Capture / fault.InjectErr
//     outside the fault package itself to be a reference to a constant
//     declared in the fault package (the single registry), and
//   - inside the fault package: the exported Point* constants to be
//     non-empty, dotted, pairwise distinct, and listed in the Points
//     registry slice exactly once each.
var FaultPointAnalyzer = &analysis.Analyzer{
	Name: "faultpoint",
	Doc: "requires fault injection/capture labels to be constants registered " +
		"in the internal/fault registry, unique repo-wide",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runFaultPoint,
}

// faultEntryPoints are the functions whose first argument names a fault
// point.
var faultEntryPoints = set("Inject", "Capture", "InjectErr")

func runFaultPoint(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	if pkgBase(pass.Pkg.Path()) == "fault" {
		checkRegistry(pass, ins)
		return nil, nil
	}

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || pkgBase(fn.Pkg().Path()) != "fault" || !faultEntryPoints[fn.Name()] {
			return
		}
		arg := call.Args[0]
		if c := referencedConst(pass, arg); c != nil {
			if c.Pkg() != fn.Pkg() {
				reportf(pass, arg,
					"fault point constant %s is declared in %s, not in the fault registry: move it to the internal/fault Point* block",
					c.Name(), c.Pkg().Path())
			}
			return
		}
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			reportf(pass, arg,
				"fault point %s passed as a loose literal: register it as a Point* constant in internal/fault so chaos tests cannot hook a typo",
				tv.Value.ExactString())
			return
		}
		reportf(pass, arg,
			"fault point passed as a non-constant expression: %s.%s must be called with a registered internal/fault Point* constant",
			pkgBase(fn.Pkg().Path()), fn.Name())
	})
	return nil, nil
}

// referencedConst resolves arg to the constant object it references, if it
// is a plain identifier or selector reference.
func referencedConst(pass *analysis.Pass, arg ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := arg.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, _ := pass.TypesInfo.Uses[id].(*types.Const)
	return c
}

// checkRegistry validates the fault package itself: Point* constants are
// well-formed and distinct, and the Points slice lists each exactly once.
func checkRegistry(pass *analysis.Pass, ins *inspector.Inspector) {
	type pointConst struct {
		name string
		val  string
		node ast.Node
	}
	var consts []pointConst
	byVal := map[string]string{} // value -> first const name

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Point") || !c.Exported() || name == "Points" {
			continue
		}
		if c.Val().Kind() != constant.String {
			continue
		}
		val := constant.StringVal(c.Val())
		consts = append(consts, pointConst{name: name, val: val})
		if val == "" || !strings.Contains(val, ".") {
			reportAtObj(pass, c, "fault point %s = %q must be a non-empty dotted name (pkg.site)", name, val)
		}
		if prev, dup := byVal[val]; dup {
			reportAtObj(pass, c, "fault point %s duplicates the value %q of %s: points must be unique repo-wide", name, val, prev)
		} else {
			byVal[val] = name
		}
	}

	// Find `var Points = []string{...}` and require set equality with the
	// Point* constants.
	ins.Preorder([]ast.Node{(*ast.ValueSpec)(nil)}, func(n ast.Node) {
		spec := n.(*ast.ValueSpec)
		for i, vn := range spec.Names {
			if vn.Name != "Points" || i >= len(spec.Values) {
				continue
			}
			lit, ok := spec.Values[i].(*ast.CompositeLit)
			if !ok {
				continue
			}
			listed := map[string]bool{}
			for _, elem := range lit.Elts {
				c := referencedConstFromDef(pass, elem)
				if c == nil {
					reportf(pass, elem, "Points registry entries must reference the Point* constants directly")
					continue
				}
				if listed[c.Name()] {
					reportf(pass, elem, "Points lists %s twice", c.Name())
				}
				listed[c.Name()] = true
			}
			for _, pc := range consts {
				if !listed[pc.name] {
					reportf(pass, lit, "fault point constant %s is missing from the Points registry", pc.name)
				}
			}
		}
	})
}

func referencedConstFromDef(pass *analysis.Pass, e ast.Expr) *types.Const {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	c, _ := pass.TypesInfo.Uses[id].(*types.Const)
	return c
}

// reportAtObj reports at the declaration position of obj.
func reportAtObj(pass *analysis.Pass, obj types.Object, format string, args ...any) {
	reportf(pass, posRange{obj.Pos()}, format, args...)
}

type posRange struct{ p token.Pos }

func (r posRange) Pos() token.Pos { return r.p }
func (r posRange) End() token.Pos { return r.p }
