package driver_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"cdagio/internal/lint"
	"cdagio/internal/lint/driver"
)

// TestRepoSweepIsClean pins the burned-down state of the tree: the full
// cdaglint suite over every package in the module must report zero findings,
// exactly like the CI gate.
func TestRepoSweepIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide sweep: skipped in -short mode")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(out)))
	var buf bytes.Buffer
	n, err := driver.Main(&buf, root, []string{"./..."}, lint.Analyzers())
	if err != nil {
		t.Fatalf("cdaglint driver: %v", err)
	}
	if n != 0 {
		t.Errorf("cdaglint found %d finding(s) on the tree:\n%s", n, buf.String())
	}
}
