// Package driver is cdaglint's self-contained go/analysis driver.
//
// The stock x/tools drivers (multichecker, analysistest) sit on
// golang.org/x/tools/go/packages, which drags a dependency tree the build
// intentionally avoids.  This driver reimplements the small slice cdaglint
// needs, offline:
//
//  1. one `go list -export -deps -json` invocation resolves every package in
//     the requested patterns plus its dependency universe, with compiled
//     export data for each dependency straight from the build cache;
//  2. target packages (the ones in the main module) are re-parsed from
//     source with comments and type-checked against that export data via
//     go/importer's lookup mode — the same separate-compilation shape `go
//     vet` uses;
//  3. the analyzers run per package in Requires order, diagnostics are
//     filtered through the //cdaglint:allow machinery inside the analyzers
//     themselves, and malformed allow comments are reported by the driver.
//
// Facts are not supported (no cdaglint analyzer uses them); Requires chains
// and inspector results are.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"cdagio/internal/lint"
)

// listPkg is the subset of `go list -json` output the driver consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *listModule
	Error      *listError
}

type listModule struct {
	Path      string
	GoVersion string
}

type listError struct {
	Err string
}

// Universe is the resolved package graph of one go list invocation: export
// data for every dependency and source file lists for the target packages.
type Universe struct {
	Fset    *token.FileSet
	Targets []*listPkg
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// Load runs go list over the patterns (plus extra patterns whose export data
// should be importable, e.g. std packages fixtures use) in dir and returns
// the universe.  Target packages are the non-DepOnly results that belong to
// a module (i.e. the main module's packages); extra patterns contribute
// export data only.
func Load(dir string, patterns, extra []string) (*Universe, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	args = append(args, extra...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}

	u := &Universe{Fset: token.NewFileSet(), exports: map[string]string{}}
	extraSet := map[string]bool{}
	for _, e := range extra {
		extraSet[e] = true
	}
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			u.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Module != nil && !extraSet[p.ImportPath] {
			target := p
			u.Targets = append(u.Targets, &target)
		}
	}
	sort.Slice(u.Targets, func(i, j int) bool { return u.Targets[i].ImportPath < u.Targets[j].ImportPath })

	u.imp = importer.ForCompiler(u.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := u.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return u, nil
}

// Importer exposes the export-data importer, so fixture harnesses can chain
// their own source-loading importer in front of it.
func (u *Universe) Importer() types.Importer { return u.imp }

// Package is one type-checked target package ready for analysis.
type Package struct {
	Path      string
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	Module    *analysis.Module
}

// NewTypesInfo returns a types.Info with every map the analyzers need.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// goVersionOf formats a go list module version for types.Config.
func goVersionOf(m *listModule) string {
	if m == nil || m.GoVersion == "" {
		return ""
	}
	return "go" + m.GoVersion
}

// TypeCheckFiles parses nothing — files are already parsed — and
// type-checks them as the package at importPath against imp.
func (u *Universe) TypeCheckFiles(importPath, goVersion string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := NewTypesInfo()
	conf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(importPath, u.Fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// CheckTarget parses and type-checks one target package from source.
func (u *Universe) CheckTarget(p *listPkg) (*Package, error) {
	if len(p.CgoFiles) > 0 {
		return nil, fmt.Errorf("package %s uses cgo, which the cdaglint driver does not support", p.ImportPath)
	}
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(u.Fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, info, err := u.TypeCheckFiles(p.ImportPath, goVersionOf(p.Module), files, u.imp)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	var mod *analysis.Module
	if p.Module != nil {
		mod = &analysis.Module{Path: p.Module.Path, GoVersion: goVersionOf(p.Module)}
	}
	return &Package{Path: p.ImportPath, Files: files, Types: pkg, TypesInfo: info, Module: mod}, nil
}

// Diagnostic is one reported finding, position already resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// RunAnalyzers applies the analyzers (and their Requires closure) to the
// package and returns the surviving diagnostics plus the driver's own
// malformed-allow findings, sorted by position.
func RunAnalyzers(fset *token.FileSet, pkg *Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	var diags []Diagnostic
	results := map[*analysis.Analyzer]any{}
	done := map[*analysis.Analyzer]bool{}

	var runOne func(a *analysis.Analyzer) error
	runOne = func(a *analysis.Analyzer) error {
		if done[a] {
			return nil
		}
		done[a] = true
		resultOf := map[*analysis.Analyzer]any{}
		for _, req := range a.Requires {
			if err := runOne(req); err != nil {
				return err
			}
			resultOf[req] = results[req]
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			Module:     pkg.Module,
			ResultOf:   resultOf,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		result, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path, err)
		}
		results[a] = result
		return nil
	}
	for _, a := range analyzers {
		if err := runOne(a); err != nil {
			return nil, err
		}
	}

	// The driver's own rule: every allow comment must name a known analyzer
	// and carry a reason.
	lint.CheckAllows(fset, pkg.Files, lint.KnownAnalyzers(), func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{Analyzer: "cdaglint", Pos: fset.Position(pos), Message: msg})
	})

	sortDiagnostics(diags)
	return dedup(diags), nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Main is the multichecker entry point: load the patterns, run the suite on
// every target, print findings.  It returns the number of findings, or an
// error for operational failures (list/parse/type-check problems).
func Main(w io.Writer, dir string, patterns []string, analyzers []*analysis.Analyzer) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	u, err := Load(dir, patterns, nil)
	if err != nil {
		return 0, err
	}
	findings := 0
	for _, target := range u.Targets {
		pkg, err := u.CheckTarget(target)
		if err != nil {
			return findings, err
		}
		diags, err := RunAnalyzers(u.Fset, pkg, analyzers)
		if err != nil {
			return findings, err
		}
		for _, d := range diags {
			fmt.Fprintf(w, "%s: [%s] %s\n", relPosition(dir, d.Pos), d.Analyzer, d.Message)
			findings++
		}
	}
	return findings, nil
}

// relPosition renders a position with the filename relative to dir when
// possible, keeping gate output stable across checkouts.
func relPosition(dir string, pos token.Position) string {
	if rel, err := filepath.Rel(dir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = rel
	}
	return pos.String()
}
