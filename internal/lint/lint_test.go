package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"cdagio/internal/lint"
	"cdagio/internal/lint/linttest"
)

func fixtureRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func runFixtures(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root := fixtureRoot(t)
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			linttest.Run(t, root, pkg, a)
		})
	}
}

func TestHotLoopFixtures(t *testing.T) {
	runFixtures(t, lint.HotLoopAnalyzer,
		"hotloop/flagged/prbw",
		"hotloop/clean/prbw",
		"hotloop/clean/coldutil",
		"hotloop/suppressed/prbw",
	)
}

func TestDeterminismFixtures(t *testing.T) {
	runFixtures(t, lint.DeterminismAnalyzer,
		"determinism/flagged/graphalg",
		"determinism/clean/graphalg",
		"determinism/suppressed/graphalg",
	)
}

func TestCtxFlowFixtures(t *testing.T) {
	runFixtures(t, lint.CtxFlowAnalyzer,
		"ctxflow/flagged/engine",
		"ctxflow/clean/engine",
		"ctxflow/suppressed/engine",
	)
}

func TestFaultPointFixtures(t *testing.T) {
	runFixtures(t, lint.FaultPointAnalyzer,
		"faultpoint/flagged/consumer",
		"faultpoint/flagged/fault",
		"faultpoint/clean/consumer",
		"faultpoint/suppressed/consumer",
		// The shared stub registry doubles as the clean registry fixture.
		"fault",
	)
}

func TestErrTaxonomyFixtures(t *testing.T) {
	runFixtures(t, lint.ErrTaxonomyAnalyzer,
		"errtaxonomy/flagged/serve",
		"errtaxonomy/clean/serve",
		"errtaxonomy/suppressed/serve",
	)
}

// TestAllowMisuse pins the driver-level rule: a reason-less allow and an
// unknown-analyzer allow are findings in their own right, and neither
// suppresses the diagnostic it sits on.  Expectations are explicit here
// because a trailing want comment on an allow line would parse as its reason.
func TestAllowMisuse(t *testing.T) {
	diags := linttest.Load(t, fixtureRoot(t), "allowcheck/flagged/demo", lint.Analyzers()...)
	expected := []struct{ analyzer, substr string }{
		{"cdaglint", "cdaglint:allow ctxflow has no reason"},
		{"cdaglint", "names unknown analyzer nosuchanalyzer"},
		{"cdaglint", "needs an analyzer name and a reason"},
		{"ctxflow", "context.Background() minted"},
		{"ctxflow", "context.Background() minted"},
	}
	if len(diags) != len(expected) {
		t.Errorf("got %d diagnostics, want %d:", len(diags), len(expected))
		for _, d := range diags {
			t.Errorf("  %s: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	used := make([]bool, len(diags))
	for _, e := range expected {
		found := false
		for i, d := range diags {
			if !used[i] && d.Analyzer == e.analyzer && strings.Contains(d.Message, e.substr) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic matched [%s] %q", e.analyzer, e.substr)
		}
	}
}
