package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

const allowSrc = `package p

func a() {
	_ = 1 //cdaglint:allow hotloop the reason
	_ = 2
	//cdaglint:allow determinism
	_ = 3
	_ = 4 //cdaglint:allowx not-a-directive
}
`

func parseAllowSrc(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestParseAllows(t *testing.T) {
	fset, f := parseAllowSrc(t, allowSrc)
	sites := parseAllows(fset, f)
	if len(sites) != 2 {
		t.Fatalf("got %d allow sites, want 2 (the cdaglint:allowx line is not a directive): %+v", len(sites), sites)
	}
	if sites[0].analyzer != "hotloop" || sites[0].reason != "the reason" || sites[0].line != 4 {
		t.Errorf("site 0 = %+v, want hotloop/\"the reason\" on line 4", sites[0])
	}
	if sites[1].analyzer != "determinism" || sites[1].reason != "" || sites[1].line != 6 {
		t.Errorf("site 1 = %+v, want determinism with empty reason on line 6", sites[1])
	}
}

func TestSuppressedWindow(t *testing.T) {
	fset, f := parseAllowSrc(t, allowSrc)
	tf := fset.File(f.Pos())
	at := func(line int) token.Pos { return tf.LineStart(line) }

	hot := &analysis.Pass{Analyzer: HotLoopAnalyzer, Fset: fset, Files: []*ast.File{f}}
	for line, want := range map[int]bool{3: false, 4: true, 5: true, 6: false} {
		if got := suppressed(hot, at(line)); got != want {
			t.Errorf("hotloop suppressed at line %d = %v, want %v", line, got, want)
		}
	}

	// The determinism allow has no reason: it must not suppress anything.
	det := &analysis.Pass{Analyzer: DeterminismAnalyzer, Fset: fset, Files: []*ast.File{f}}
	for _, line := range []int{6, 7} {
		if suppressed(det, at(line)) {
			t.Errorf("reason-less allow suppressed determinism at line %d", line)
		}
	}
}

const checkSrc = `package p

//cdaglint:allow hotloop justified because reasons
//cdaglint:allow nosuch some reason
//cdaglint:allow determinism
//cdaglint:allow
func b() {}
`

func TestCheckAllows(t *testing.T) {
	fset, f := parseAllowSrc(t, checkSrc)
	var msgs []string
	CheckAllows(fset, []*ast.File{f}, KnownAnalyzers(), func(pos token.Pos, msg string) {
		msgs = append(msgs, msg)
	})
	if len(msgs) != 3 {
		t.Fatalf("got %d findings, want 3: %v", len(msgs), msgs)
	}
	for i, substr := range []string{
		"names unknown analyzer nosuch",
		"has no reason",
		"needs an analyzer name and a reason",
	} {
		if !strings.Contains(msgs[i], substr) {
			t.Errorf("finding %d = %q, want it to contain %q", i, msgs[i], substr)
		}
	}
}
