package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// The suppression syntax:
//
//	//cdaglint:allow <analyzer> <reason>
//
// silences diagnostics of the named analyzer on the comment's own line and
// on the line immediately below it, so it works both as a trailing comment
// and as a standalone comment above the offending statement.  The reason is
// mandatory — an allow without one, or naming an unknown analyzer, is
// reported by CheckAllows as a diagnostic in its own right, so every
// exception in the tree carries its justification.

const allowPrefix = "//cdaglint:allow"

// allowSite is one parsed //cdaglint:allow comment.
type allowSite struct {
	analyzer string // "" when missing
	reason   string // "" when missing
	pos      token.Pos
	line     int // line of the comment itself
}

// parseAllows extracts every cdaglint:allow comment from the file.
func parseAllows(fset *token.FileSet, f *ast.File) []allowSite {
	var sites []allowSite
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, allowPrefix)
			// Require the prefix to be the whole directive word: reject
			// "//cdaglint:allowx".
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			fields := strings.Fields(rest)
			site := allowSite{pos: c.Pos(), line: fset.Position(c.Pos()).Line}
			if len(fields) > 0 {
				site.analyzer = fields[0]
			}
			if len(fields) > 1 {
				site.reason = strings.Join(fields[1:], " ")
			}
			sites = append(sites, site)
		}
	}
	return sites
}

// suppressed reports whether a diagnostic of the pass's analyzer at pos is
// covered by a well-formed allow comment.  Malformed allows (no reason) do
// not suppress: they surface through CheckAllows instead, and the original
// diagnostic stays live so an empty reason cannot silence anything.
func suppressed(pass *analysis.Pass, pos token.Pos) bool {
	posn := pass.Fset.Position(pos)
	for _, f := range pass.Files {
		ff := pass.Fset.File(f.FileStart)
		if ff == nil || ff.Name() != posn.Filename {
			continue
		}
		for _, site := range parseAllows(pass.Fset, f) {
			if site.analyzer != pass.Analyzer.Name || site.reason == "" {
				continue
			}
			if posn.Line == site.line || posn.Line == site.line+1 {
				return true
			}
		}
	}
	return false
}

// reportf is the reporting path every cdaglint analyzer uses: it drops
// diagnostics in _test.go files (tests may break the engine rules freely)
// and diagnostics covered by a well-formed allow, then forwards to
// pass.ReportRangef.
func reportf(pass *analysis.Pass, rng analysis.Range, format string, args ...any) {
	posn := pass.Fset.Position(rng.Pos())
	if strings.HasSuffix(posn.Filename, "_test.go") {
		return
	}
	if suppressed(pass, rng.Pos()) {
		return
	}
	pass.ReportRangef(rng, format, args...)
}

// CheckAllows validates every cdaglint:allow comment in the given files: the
// named analyzer must be one of `known` and the reason must be non-empty.
// The driver runs it once per package and reports violations under the
// "cdaglint" name — a suppression that does not say why it exists is itself
// a finding.
func CheckAllows(fset *token.FileSet, files []*ast.File, known map[string]bool,
	report func(pos token.Pos, msg string)) {
	for _, f := range files {
		for _, site := range parseAllows(fset, f) {
			switch {
			case site.analyzer == "":
				report(site.pos, "cdaglint:allow needs an analyzer name and a reason: //cdaglint:allow <analyzer> <reason>")
			case !known[site.analyzer]:
				report(site.pos, "cdaglint:allow names unknown analyzer "+site.analyzer)
			case site.reason == "":
				report(site.pos, "cdaglint:allow "+site.analyzer+" has no reason; a suppression must say why it is sound")
			}
		}
	}
}

// KnownAnalyzers returns the set of analyzer names CheckAllows accepts.
func KnownAnalyzers() map[string]bool {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	return known
}
