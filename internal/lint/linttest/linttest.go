// Package linttest is cdaglint's offline replacement for
// golang.org/x/tools/go/analysis/analysistest.
//
// The stock analysistest loads fixtures through go/packages and the network-
// facing module machinery; this harness reuses the cdaglint driver instead.
// One `go list -export -deps` pass over the real module supplies export data
// for every dependency (plus a few std packages only fixtures use), fixture
// packages under testdata/src are type-checked from source with a chained
// importer so they can depend on stub packages (testdata/src/cdag,
// testdata/src/fault) that mimic the real internal packages, and diagnostics
// are compared against analysistest-style expectations:
//
//	g.Succ(v) // want `Succ called inside a loop`
//
// Each backquoted chunk after "want" is a regexp that must match exactly one
// diagnostic on that line; diagnostics without a matching want, and wants
// without a matching diagnostic, fail the test.  The driver's own
// allow-misuse findings participate like any other diagnostic, so fixtures
// can also pin the suppression machinery itself.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"

	"cdagio/internal/lint/driver"
)

// stdFixtureDeps are std packages fixtures import that are not already in the
// module's own dependency closure; their export data must be loadable too.
var stdFixtureDeps = []string{"math/rand"}

var (
	uniOnce sync.Once
	uni     *driver.Universe
	uniErr  error
)

// universe loads the module-wide export-data universe once per test binary.
func universe(t *testing.T) *driver.Universe {
	t.Helper()
	uniOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			uniErr = err
			return
		}
		uni, uniErr = driver.Load(root, []string{"./..."}, stdFixtureDeps)
	})
	if uniErr != nil {
		t.Fatalf("loading export-data universe: %v", uniErr)
	}
	return uni
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// fixtureImporter resolves imports that name a directory under the fixture
// root from source (recursively, so stubs may import other stubs) and
// delegates everything else to the universe's export-data importer.
type fixtureImporter struct {
	root  string
	u     *driver.Universe
	cache map[string]*types.Package
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return im.u.Importer().Import(path)
	}
	files, err := parseFixtureDir(im.u.Fset, dir)
	if err != nil {
		return nil, err
	}
	pkg, _, err := im.u.TypeCheckFiles(path, "", files, im)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture dependency %s: %v", path, err)
	}
	im.cache[path] = pkg
	return pkg, nil
}

func parseFixtureDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in fixture dir %s", dir)
	}
	return files, nil
}

// Load type-checks the fixture package at pkgPath (slash-separated, relative
// to root, also used as its import path so basename-matched rules apply) and
// returns it ready for driver.RunAnalyzers.
func Load(t *testing.T, root, pkgPath string, analyzers ...*analysis.Analyzer) []driver.Diagnostic {
	t.Helper()
	u := universe(t)
	im := &fixtureImporter{root: root, u: u, cache: map[string]*types.Package{}}
	dir := filepath.Join(root, filepath.FromSlash(pkgPath))
	files, err := parseFixtureDir(u.Fset, dir)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", pkgPath, err)
	}
	pkg, info, err := u.TypeCheckFiles(pkgPath, "", files, im)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkgPath, err)
	}
	diags, err := driver.RunAnalyzers(u.Fset, &driver.Package{
		Path:      pkgPath,
		Files:     files,
		Types:     pkg,
		TypesInfo: info,
	}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on fixture %s: %v", pkgPath, err)
	}
	return diags
}

// Run loads the fixture package, applies the analyzers, and compares the
// diagnostics against the fixture's want comments.
func Run(t *testing.T, root, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	u := universe(t)
	diags := Load(t, root, pkgPath, analyzers...)
	wants := collectWants(t, u.Fset, filepath.Join(root, filepath.FromSlash(pkgPath)))
	checkWants(t, pkgPath, diags, wants)
}

// want is one expected diagnostic: a regexp anchored to a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// wantChunk extracts the backquoted regexps of a want comment.
var wantChunk = regexp.MustCompile("`([^`]*)`")

// collectWants re-parses the fixture files and gathers every
// "// want `re` [`re` ...]" comment, keyed to the comment's own line.
func collectWants(t *testing.T, fset *token.FileSet, dir string) []*want {
	t.Helper()
	files, err := parseFixtureDir(fset, dir)
	if err != nil {
		t.Fatalf("collecting wants: %v", err)
	}
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimLeft(text, " \t")
				if !strings.HasPrefix(text, "want ") && !strings.HasPrefix(text, "want`") {
					continue
				}
				posn := fset.Position(c.Pos())
				matches := wantChunk.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					t.Errorf("%s: want comment has no backquoted regexp", posn)
					continue
				}
				for _, m := range matches {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, m[1], err)
						continue
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}
	return wants
}

// checkWants matches diagnostics against wants one-to-one: every diagnostic
// must consume a matching want on its line, every want must be consumed.
func checkWants(t *testing.T, pkgPath string, diags []driver.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic in %s: [%s] %s", d.Pos, pkgPath, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched want %q in %s", w.file, w.line, w.re, pkgPath)
		}
	}
}
