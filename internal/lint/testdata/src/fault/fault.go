// Package fault is the registry stub the faultpoint fixtures compile
// against; it mirrors the shape of cdagio/internal/fault.  It is also itself
// a clean registry fixture: running the faultpoint analyzer on it must
// produce no diagnostics.
package fault

// Registered fault points.
const (
	PointAlpha = "fixture.alpha.worker"
	PointBeta  = "fixture.beta.worker"
)

// Points is the registry.
var Points = []string{PointAlpha, PointBeta}

// Inject panics at a registered point when a hook is armed.
func Inject(point string) {}

// Capture runs fn with panic isolation under the given label.
func Capture(label string, fn func()) error {
	fn()
	return nil
}

// InjectErr converts an injected panic at point into an error.
func InjectErr(point string) error { return nil }
