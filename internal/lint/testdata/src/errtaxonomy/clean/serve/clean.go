// Package serve is the clean errtaxonomy fixture: failures are classified
// away from the wire and statuses flow from the taxonomy value, so no
// diagnostics are produced.
package serve

import (
	"errors"
	"fmt"
	"net/http"
)

var errBadMethod = errors.New("bad method")

type apiError struct {
	Status int
	Detail string
}

// classify is where unclassified failures become taxonomy errors; it holds
// no response writer, so fmt.Errorf is fine here.
func classify(err error) *apiError {
	wrapped := fmt.Errorf("classified: %w", err)
	return &apiError{Status: http.StatusBadRequest, Detail: wrapped.Error()}
}

// okHandler writes errors only through the taxonomy helper.
func okHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, classify(errBadMethod))
		return
	}
	w.WriteHeader(http.StatusOK)
}

// writeError maps a classified error onto the wire; the status comes from
// the taxonomy value, never a hand-picked literal.
func writeError(w http.ResponseWriter, e *apiError) {
	w.WriteHeader(e.Status)
	_, _ = w.Write([]byte(e.Detail))
}

var _ = okHandler
