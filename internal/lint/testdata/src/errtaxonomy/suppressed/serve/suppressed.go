// Package serve is the suppressed errtaxonomy fixture: the plain-text probe
// carries a reasoned allow, so no diagnostics are produced.
package serve

import "net/http"

// probeHandler predates the taxonomy and answers plain text; the allow
// records the debt.
func probeHandler(w http.ResponseWriter, r *http.Request) {
	//cdaglint:allow errtaxonomy fixture: plain-text probe endpoint predates the taxonomy writer
	http.Error(w, "probe", http.StatusTeapot)
}

var _ = probeHandler
