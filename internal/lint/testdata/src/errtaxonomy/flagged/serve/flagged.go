// Package serve is an errtaxonomy fixture: its basename makes the taxonomy
// rules apply, so naked error paths next to a response writer are flagged.
package serve

import (
	"fmt"
	"net/http"
)

func badHandler(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http.Error bypasses the serve.Error taxonomy`
	if r.Method != http.MethodGet {
		err := fmt.Errorf("method %s", r.Method) // want `fmt.Errorf inside a response-writer function`
		_ = err
	}
	w.WriteHeader(503) // want `WriteHeader\(503\) hand-picks an error status`
}

func badClosure(mux *http.ServeMux) {
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(422) // want `WriteHeader\(422\) hand-picks an error status`
	})
}

var _ = badHandler
