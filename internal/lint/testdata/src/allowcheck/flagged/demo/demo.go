// Package demo exercises the driver's allow-validation rule.  Expectations
// live in lint_test.go instead of want comments, because a trailing want
// comment on an allow line would parse as the allow's reason.
package demo

import "context"

// MintWithoutReason carries a reason-less allow: the allow is reported AND
// the diagnostic it tried to silence stays live.
func MintWithoutReason() context.Context {
	//cdaglint:allow ctxflow
	return context.Background()
}

// MintUnknown names an analyzer that does not exist.
func MintUnknown() context.Context {
	//cdaglint:allow nosuchanalyzer because reasons
	return context.Background()
}

//cdaglint:allow
func Bare() {}
