// Package consumer is the suppressed faultpoint fixture: the loose literal
// carries a reasoned allow, so no diagnostics are produced.
package consumer

import "fault"

// ProbeUnregistered exercises the unknown-point error path with a label that
// must stay unregistered; the allow records why.
func ProbeUnregistered() {
	//cdaglint:allow faultpoint fixture: probes the unknown-point error path, so the label must stay unregistered
	fault.Inject("consumer.unregistered")
}
