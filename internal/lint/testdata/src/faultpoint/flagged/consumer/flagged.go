// Package consumer is a faultpoint fixture: labels handed to the fault
// package must reference its registered constants, so every other form is
// flagged.
package consumer

import "fault"

const localPoint = "consumer.local"

// Bad exercises the three rejected label forms.
func Bad(dyn string) error {
	fault.Inject("consumer.typo")            // want `fault point "consumer.typo" passed as a loose literal`
	fault.Inject(localPoint)                 // want `fault point constant localPoint is declared in faultpoint/flagged/consumer, not in the fault registry`
	fault.Inject(dyn)                        // want `fault point passed as a non-constant expression: fault.Inject must be called`
	return fault.InjectErr("consumer.typo2") // want `fault point "consumer.typo2" passed as a loose literal`
}

// Wrap hits the same rule through Capture.
func Wrap() error {
	return fault.Capture("consumer.capture", func() {}) // want `fault point "consumer.capture" passed as a loose literal`
}
