// Package fault is the flagged registry fixture: a deliberately inconsistent
// Point* block exercising every registry rule.
package fault

// Registered fault points, three of them broken.
const (
	PointAlpha = "fixture.alpha"
	PointBare  = "bare"          // want `fault point PointBare = "bare" must be a non-empty dotted name`
	PointZeta  = "fixture.alpha" // want `fault point PointZeta duplicates the value "fixture.alpha" of PointAlpha`
	PointLost  = "fixture.lost"
)

// Points forgets PointLost, lists PointZeta twice, and smuggles in a raw
// string.
var Points = []string{ // want `fault point constant PointLost is missing from the Points registry`
	PointAlpha,
	PointBare,
	PointZeta,
	PointZeta,     // want `Points lists PointZeta twice`
	"fixture.raw", // want `Points registry entries must reference the Point\* constants directly`
}
