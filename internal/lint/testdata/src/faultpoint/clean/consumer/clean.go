// Package consumer is the clean faultpoint fixture: every label references a
// constant from the fault registry, so no diagnostics are produced.
package consumer

import "fault"

// Good uses registered constants at each entry point.
func Good() error {
	fault.Inject(fault.PointAlpha)
	if err := fault.Capture(fault.PointBeta, func() {}); err != nil {
		return err
	}
	return fault.InjectErr(fault.PointAlpha)
}
