// Package prbw is a hotloop fixture: its import-path basename puts it in the
// hot set, so per-iteration adjacency calls must be flagged.
package prbw

import "cdag"

// SumDegrees re-derives adjacency rows inside its loops.
func SumDegrees(g *cdag.Graph, order []cdag.VertexID) int {
	total := 0
	for _, v := range order {
		total += len(g.Succ(v)) // want `Succ called inside a loop in hot package prbw`
	}
	for i := 0; i < len(order); i++ {
		total += len(g.Pred(order[i])) // want `Pred called inside a loop in hot package prbw`
	}
	return total
}

// DeprecatedAlias exercises the Successors alias.
func DeprecatedAlias(g *cdag.Graph, order []cdag.VertexID) int {
	total := 0
	for _, v := range order {
		total += len(g.Successors(v)) // want `Successors called inside a loop in hot package prbw`
	}
	return total
}

// Walk smuggles the per-call row lookup into the callee as a method value.
func Walk(g *cdag.Graph) {
	visit(g.Succ) // want `Succ used as a method value in hot package prbw`
}

func visit(next func(cdag.VertexID) []cdag.VertexID) {}
