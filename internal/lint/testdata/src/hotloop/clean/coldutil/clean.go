// Package coldutil is outside the hot set: per-iteration adjacency calls are
// allowed here, so this fixture must produce no diagnostics.
package coldutil

import "cdag"

// Degrees may re-derive rows per iteration because nothing profiles this
// package.
func Degrees(g *cdag.Graph, order []cdag.VertexID) int {
	total := 0
	for _, v := range order {
		total += len(g.Succ(v))
	}
	return total
}
