// Package prbw is the clean hotloop fixture: every form here follows the
// hoisted-CSR convention and must produce no diagnostics.
package prbw

import "cdag"

// SumDegreesHoisted fetches the CSR rows once and indexes them per iteration.
func SumDegreesHoisted(g *cdag.Graph, order []cdag.VertexID) int {
	off, val := g.SuccessorCSR()
	total := 0
	for _, v := range order {
		total += len(val[off[v]:off[v+1]])
	}
	return total
}

// RootRow calls Succ outside any loop: allowed.
func RootRow(g *cdag.Graph) []cdag.VertexID {
	return g.Succ(0)
}

// InitOnly evaluates Pred in the for-init, which runs once: allowed.
func InitOnly(g *cdag.Graph) int {
	n := 0
	for row := g.Pred(0); n < len(row); n++ {
	}
	return n
}

// RangeOperand evaluates Succ once as the range operand: allowed.
func RangeOperand(g *cdag.Graph) int {
	total := 0
	for _, w := range g.Succ(0) {
		total += int(w)
	}
	return total
}
