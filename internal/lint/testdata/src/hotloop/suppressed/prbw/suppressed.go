// Package prbw is the suppressed hotloop fixture: both allow placements
// (trailing and standalone-above) must silence the diagnostic, so this
// fixture produces none.
package prbw

import "cdag"

// HistoricScan keeps a per-iteration Succ call behind a trailing allow.
func HistoricScan(g *cdag.Graph, order []cdag.VertexID) int {
	total := 0
	for _, v := range order {
		total += len(g.Succ(v)) //cdaglint:allow hotloop fixture: profiled cold path, row hoisting not worth it
	}
	return total
}

// AboveLineForm suppresses via a standalone comment on the line above.
func AboveLineForm(g *cdag.Graph, order []cdag.VertexID) int {
	total := 0
	for _, v := range order {
		//cdaglint:allow hotloop fixture: standalone-comment form of the same allow
		total += len(g.Pred(v))
	}
	return total
}
