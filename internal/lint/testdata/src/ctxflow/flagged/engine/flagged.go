// Package engine is a ctxflow fixture: a library (non-main) package, so
// minted context roots and ignored ctx parameters must be flagged.
package engine

import "context"

// Root manufactures a root context inside library code.
func Root() context.Context {
	return context.Background() // want `context.Background\(\) minted inside library package engine`
}

// Todo does the same with TODO.
func Todo() context.Context {
	return context.TODO() // want `context.TODO\(\) minted inside library package engine`
}

// Analyze promises cancellation in its signature and ignores it.
func Analyze(ctx context.Context, n int) int { // want `exported Analyze accepts ctx but never uses it`
	return n * 2
}

// Runner is exported, so its methods are an exported contract.
type Runner struct{}

// Run ignores its ctx on an exported method.
func (r *Runner) Run(ctx context.Context) error { // want `exported Run accepts ctx but never uses it`
	return nil
}

// Discard throws the parameter away by name.
func Discard(_ context.Context) {} // want `exported Discard discards its context parameter`
