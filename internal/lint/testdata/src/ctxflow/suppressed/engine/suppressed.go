// Package engine is the suppressed ctxflow fixture: the minted root carries
// a reasoned allow, so no diagnostics are produced.
package engine

import "context"

// Detach deliberately severs cancellation for a background flush; the allow
// records the contract.
func Detach() context.Context {
	//cdaglint:allow ctxflow fixture: deliberately detached background flush keeps its own root
	return context.Background()
}
