// Package engine is the clean ctxflow fixture: contexts flow from the caller
// and every accepted ctx is used, so no diagnostics are produced.
package engine

import "context"

// Run threads its context.
func Run(ctx context.Context) error {
	return ctx.Err()
}

// Forward passes ctx down to a helper.
func Forward(ctx context.Context, n int) error {
	return helper(ctx, n)
}

func helper(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

// quiet is unexported: an unused ctx here is a local style matter, not an
// exported-contract violation.
func quiet(ctx context.Context) {}

var _ = quiet

type worker struct{}

// Step sits on an unexported receiver, so the unused ctx stays internal.
func (w *worker) Step(ctx context.Context) error {
	return nil
}

// Capture uses ctx only inside a closure, which counts as use.
func Capture(ctx context.Context) func() error {
	return func() error { return ctx.Err() }
}
