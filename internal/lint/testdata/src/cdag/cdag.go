// Package cdag is the graph stub the lint fixtures compile against; it
// mirrors the adjacency surface of cdagio/internal/cdag (the hotloop analyzer
// matches the Graph type by package basename, so this stub triggers it the
// same way the real package does).
package cdag

// VertexID identifies a vertex.
type VertexID int32

// Graph is the stub CDAG.
type Graph struct {
	n int
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// Succ returns the successor row of v.
func (g *Graph) Succ(v VertexID) []VertexID { return nil }

// Pred returns the predecessor row of v.
func (g *Graph) Pred(v VertexID) []VertexID { return nil }

// Successors is the deprecated alias of Succ.
func (g *Graph) Successors(v VertexID) []VertexID { return g.Succ(v) }

// Predecessors is the deprecated alias of Pred.
func (g *Graph) Predecessors(v VertexID) []VertexID { return g.Pred(v) }

// SuccessorCSR returns the hoisted successor rows.
func (g *Graph) SuccessorCSR() (off []int64, val []VertexID) { return nil, nil }

// PredecessorCSR returns the hoisted predecessor rows.
func (g *Graph) PredecessorCSR() (off []int64, val []VertexID) { return nil, nil }
