// Package graphalg is the suppressed determinism fixture: the wall-clock
// read carries a reasoned allow, so no diagnostics are produced.
package graphalg

import "time"

// Trace stamps a debug log entry with wall time; the stamp never reaches an
// engine result, which the allow records.
func Trace() int64 {
	//cdaglint:allow determinism fixture: wall time feeds a debug log, never an engine result
	return time.Now().UnixNano()
}
