// Package graphalg is the clean determinism fixture: every sanctioned form
// of the flagged patterns, producing no diagnostics.
package graphalg

import (
	"math/rand"
	"sort"
)

// SortedKeys is the collect-then-sort idiom: the append inside the map range
// is fine because the slice is sorted before anyone sees it.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SeededStream draws from an explicitly seeded generator, not the
// process-global one.
func SeededStream(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(1000)
	}
	return out
}

// Drain has one communication case plus default: no runtime coin flip.
func Drain(ch <-chan int) (int, bool) {
	select {
	case x := <-ch:
		return x, true
	default:
		return 0, false
	}
}
