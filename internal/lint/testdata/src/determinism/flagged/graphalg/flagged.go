// Package graphalg is a determinism fixture: its basename is in the engine
// set, so ambient nondeterminism sources must be flagged.
package graphalg

import (
	"encoding/json"
	"io"
	"math/rand"
	"time"
)

// Stamp reads the wall clock inside an engine package.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in engine package graphalg`
}

// Shuffle uses the process-global generator.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle in engine package graphalg`
}

// Merge lets the runtime pick whichever channel is ready.
func Merge(a, b <-chan int) int {
	select { // want `select over 2 channels in engine package graphalg`
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

// Keys leaks map iteration order into a slice nothing sorts.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration appends into a slice in engine package graphalg`
		keys = append(keys, k)
	}
	return keys
}

// Dump streams map entries straight into an encoder.
func Dump(w io.Writer, m map[string]int) {
	enc := json.NewEncoder(w)
	for k, v := range m { // want `map iteration writes to an ordered sink \(Encode\) in engine package graphalg`
		_ = enc.Encode([2]any{k, v})
	}
}
