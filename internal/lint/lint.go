// Package lint holds cdaglint: five golang.org/x/tools/go/analysis analyzers
// that machine-enforce the repository's hand-written invariants.
//
//   - hotloop: no g.Succ/g.Pred inside loop bodies of the hot packages —
//     hoist the CSR row (SuccessorCSR/PredecessorCSR) before the loop.
//   - determinism: no wall clocks, global math/rand, multi-channel selects,
//     or map-range into ordered output inside the engine packages whose
//     results must be bit-identical across every engine mode.
//   - ctxflow: internal code never mints context.Background()/TODO() (the
//     caller owns the root context), and an exported entry point that accepts
//     a ctx must actually use it.
//   - faultpoint: every fault.Inject/Capture/InjectErr label is a constant
//     registered in the internal/fault registry — never a loose literal or a
//     variable — and the registry itself stays consistent.
//   - errtaxonomy: internal/serve never lets a naked fmt.Errorf or
//     http.Error escape to a response writer; handler errors carry a
//     serve.Error class.
//
// A finding that is intentional is silenced in place with
//
//	//cdaglint:allow <analyzer> <reason>
//
// on (or immediately above) the offending line.  The reason is mandatory: an
// allow without one is itself a diagnostic, so the source records *why* every
// exception exists.  See CheckAllows.
//
// The analyzers are ordinary go/analysis passes and run under any driver;
// cmd/cdaglint is the repository's multichecker and CI gate.
package lint

import "golang.org/x/tools/go/analysis"

// Analyzers returns the cdaglint suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		HotLoopAnalyzer,
		DeterminismAnalyzer,
		CtxFlowAnalyzer,
		FaultPointAnalyzer,
		ErrTaxonomyAnalyzer,
	}
}

// hotPackages are the packages whose inner loops are the measured hot paths:
// since PR 4 every per-vertex traversal in them goes through CSR rows hoisted
// out of the loop, and hotloop keeps it that way.  Matched by package-path
// basename so the rule follows a package through renames of the module root
// (and applies to lint fixtures).
var hotPackages = set("graphalg", "pebble", "prbw", "memsim", "sched", "wavefront", "trace")

// enginePackages are the packages whose results the equivalence suites pin
// bit-identical across engine modes, worker counts and warm restarts.  Any
// nondeterminism source inside them is a reproducibility bug by definition.
var enginePackages = set("cdag", "graphalg", "pebble", "prbw", "memsim", "sched",
	"wavefront", "bounds", "partition", "gen", "linalg", "machine", "trace", "core",
	"spec", "plan", "run", "cache", "emit")

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// pkgBase returns the last element of an import path.
func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// inPackages reports whether the pass's package matches the given basename
// set.
func inPackages(pass *analysis.Pass, names map[string]bool) bool {
	return names[pkgBase(pass.Pkg.Path())]
}
