package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// CtxFlowAnalyzer enforces the PR-5 context contract: cancellation flows
// from the caller down through every engine, so library code never
// manufactures its own root context, and an exported entry point that
// accepts a ctx must actually thread it somewhere.  Concretely it flags
//
//   - context.Background() / context.TODO() in any non-main package (the
//     CLIs and the daemon mint the root; engines receive it), and
//   - exported functions and methods with a context.Context parameter whose
//     body never references that parameter — a signature that promises
//     cancellation and silently ignores it.
var CtxFlowAnalyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flags context roots minted inside library code and exported " +
		"entry points that accept a ctx but never use it",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil), (*ast.FuncDecl)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkMintedRoot(pass, n)
		case *ast.FuncDecl:
			checkUnusedCtxParam(pass, n)
		}
	})
	return nil, nil
}

func checkMintedRoot(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		reportf(pass, call,
			"context.%s() minted inside library package %s: engines receive their context from the caller, they never create roots",
			name, pkgBase(pass.Pkg.Path()))
	}
}

func checkUnusedCtxParam(pass *analysis.Pass, decl *ast.FuncDecl) {
	if decl.Body == nil || !decl.Name.IsExported() || !exportedReceiver(decl) {
		return
	}
	for _, field := range decl.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if len(field.Names) == 0 {
			continue // unnamed parameter in an interface-shaped signature
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				reportf(pass, name,
					"exported %s discards its context parameter: name it and pass it down so cancellation reaches the engines",
					decl.Name.Name)
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if !identUsed(pass, decl.Body, obj) {
				reportf(pass, name,
					"exported %s accepts ctx but never uses it: pass it to the engines it calls (or drop the parameter)",
					decl.Name.Name)
			}
		}
	}
}

// exportedReceiver reports whether the declaration is reachable from outside
// the package: a plain function, or a method whose receiver's base type name
// is exported.
func exportedReceiver(decl *ast.FuncDecl) bool {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return true
	}
	t := decl.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// identUsed reports whether obj is referenced anywhere in body (closures
// included — a ctx captured by a nested func literal counts as used).
func identUsed(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
