package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ErrTaxonomyAnalyzer guards the daemon's error contract: every failure a
// request can observe is classified into exactly one serve.Error taxonomy
// class before it reaches the wire.  Inside the serve package it flags
//
//   - any call to http.Error (it bypasses the classified JSON error body and
//     the Retry-After machinery entirely),
//   - fmt.Errorf inside a function that holds an http.ResponseWriter (an
//     unclassified error born next to the wire; use the taxonomy
//     constructors or classify()), and
//   - WriteHeader with a literal status >= 400 in such functions (error
//     statuses must come from the taxonomy's httpStatus mapping, not be
//     hand-picked per call site).
var ErrTaxonomyAnalyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc: "requires serve-package handler errors to carry a serve.Error class; " +
		"no naked http.Error/fmt.Errorf next to a response writer",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runErrTaxonomy,
}

func runErrTaxonomy(pass *analysis.Pass) (any, error) {
	if pkgBase(pass.Pkg.Path()) != "serve" {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			// http.Error is forbidden anywhere in the package, response
			// writer in scope or not.
			if fn := calleeFunc(pass, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "net/http" && fn.Name() == "Error" {
				reportf(pass, n,
					"http.Error bypasses the serve.Error taxonomy: classify the failure and use the taxonomy writer")
			}
		case *ast.FuncDecl:
			if n.Body != nil && holdsResponseWriter(pass, n.Type) {
				checkHandlerBody(pass, n.Body)
			}
		case *ast.FuncLit:
			if holdsResponseWriter(pass, n.Type) {
				checkHandlerBody(pass, n.Body)
			}
		}
	})
	return nil, nil
}

// holdsResponseWriter reports whether the function type has a parameter of
// type net/http.ResponseWriter — the signature shape of everything that can
// let an error escape to the wire.
func holdsResponseWriter(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if named, ok := tv.Type.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter" {
				return true
			}
		}
	}
	return false
}

// checkHandlerBody flags unclassified error construction inside a function
// that can write a response.  Nested function literals are visited by the
// outer Preorder walk, so only this body's own statements are scanned (a
// closure with its own ResponseWriter parameter is its own scope).
func checkHandlerBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body && holdsResponseWriter(pass, lit.Type) {
			return false // has its own ResponseWriter: checked as its own scope
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf" {
			reportf(pass, call,
				"fmt.Errorf inside a response-writer function: handler failures must carry a serve.Error class (taxonomy constructors or classify)")
			return true
		}
		if fn.Name() == "WriteHeader" && len(call.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
				if status, ok := constant.Int64Val(tv.Value); ok && status >= 400 {
					reportf(pass, call,
						"WriteHeader(%d) hand-picks an error status: error statuses must flow through the taxonomy writer", status)
				}
			}
		}
		return true
	})
}

// calleeFunc resolves the called function object, for both pkg.Fn and
// recv.Method call forms.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}
