package cdagio

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"cdagio/internal/graphalg"
	"cdagio/internal/memsim"
)

// scaleJacobi builds the 110k-vertex / 888k-edge Jacobi CDAG of the w^max
// scale benchmark (100×100 grid, T=10, box stencil).
func scaleJacobi() *Graph {
	g := Jacobi(2, 100, 10, StencilBox).Graph
	g.Materialize()
	return g
}

// cancelPromptly runs work under a cancellable context, cancels it after
// delay, and fails the test unless work returns context.Canceled within
// budget of the cancellation.  The budget is far below the engines' full
// runtime on the scale instance, so a pass proves the cancel cut the run
// short rather than merely racing its natural end.
func cancelPromptly(t *testing.T, name string, delay, budget time.Duration, work func(ctx context.Context) error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- work(ctx) }()
	time.Sleep(delay)
	cancelled := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s returned %v, want context.Canceled", name, err)
		}
		if el := time.Since(cancelled); el > budget {
			t.Fatalf("%s took %v to honor cancellation (budget %v)", name, el, budget)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("%s never returned after cancellation", name)
	}
}

// TestWorkspaceWMaxCancelPrompt cancels a single-core all-candidates w^max
// scan of the 110k-vertex Jacobi CDAG mid-flight.  The full scan takes
// seconds; the scan must surface context.Canceled within a small fraction of
// that (the engine re-checks ctx at per-candidate pruning-tier boundaries).
func TestWorkspaceWMaxCancelPrompt(t *testing.T) {
	if testing.Short() {
		t.Skip("110k-vertex scale instance")
	}
	ws := Open(scaleJacobi())
	cancelPromptly(t, "ws.WMax", 100*time.Millisecond, 2*time.Second, func(ctx context.Context) error {
		_, _, err := ws.WMax(ctx, nil, WMaxOptions{Concurrency: 1})
		return err
	})
}

// TestWorkspaceSimulateSweepCancelPrompt cancels a long memory-simulation
// sweep (48 jobs against the 110k-vertex Jacobi CDAG) mid-flight: the sweep
// must stop claiming jobs and surface context.Canceled within the budget,
// with partial results discarded.
func TestWorkspaceSimulateSweepCancelPrompt(t *testing.T) {
	if testing.Short() {
		t.Skip("110k-vertex scale instance")
	}
	g := scaleJacobi()
	ws := Open(g)
	order := TopologicalSchedule(g)
	var jobs []MemorySweepJob
	for i := 0; i < 48; i++ {
		jobs = append(jobs, MemorySweepJob{
			Cfg:   MemSimConfig{Nodes: 1, FastWords: 256 + 8*i, Policy: MemSimBelady},
			Order: order,
		})
	}
	cancelPromptly(t, "ws.SimulateSweep", 150*time.Millisecond, 5*time.Second, func(ctx context.Context) error {
		stats, err := ws.SimulateSweep(ctx, jobs, 2)
		if stats != nil {
			return errors.New("cancelled sweep returned partial results")
		}
		return err
	})
}

// TestWorkspaceFacadeEquivalence pins the facade-level Workspace methods
// against the PR-4 entry points under context.Background(): bounds, witnesses
// and stats must be bit-identical at every worker count.
func TestWorkspaceFacadeEquivalence(t *testing.T) {
	g := Jacobi(2, 16, 4, StencilBox).Graph
	ws := Open(g)
	ctx := context.Background()

	wantW, wantAt := graphalg.MaxMinWavefrontLowerBoundSerial(g, nil)
	for _, conc := range []int{0, 1, 2, 4, 9} {
		w, at, err := ws.WMax(ctx, nil, WMaxOptions{Concurrency: conc})
		if err != nil || w != wantW || at != wantAt {
			t.Fatalf("ws.WMax conc=%d: (%d, %d, %v), serial scan (%d, %d)", conc, w, at, err, wantW, wantAt)
		}
		fw, fat := WMaxWithOptions(g, nil, WMaxOptions{Concurrency: conc})
		if fw != wantW || fat != wantAt {
			t.Fatalf("deprecated WMaxWithOptions conc=%d: (%d, %d), serial scan (%d, %d)", conc, fw, fat, wantW, wantAt)
		}
	}

	order := TopologicalSchedule(g)
	var jobs []MemorySweepJob
	var want []*memsim.Stats
	for _, s := range []int{64, 96, 128, 192} {
		cfg := MemSimConfig{Nodes: 2, FastWords: s, Policy: MemSimBelady}
		st, err := memsim.Run(g, cfg, order, nil)
		if err != nil {
			t.Fatalf("memsim.Run S=%d: %v", s, err)
		}
		want = append(want, st)
		jobs = append(jobs, MemorySweepJob{Cfg: cfg, Order: order})
	}
	for _, workers := range []int{0, 1, 2, 3, 8} {
		got, err := ws.SimulateSweep(ctx, jobs, workers)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("ws.SimulateSweep workers=%d diverges from serial runs: %v", workers, err)
		}
		free, err := SimulateMemorySweep(g, jobs, workers)
		if err != nil || !reflect.DeepEqual(free, want) {
			t.Fatalf("deprecated SimulateMemorySweep workers=%d diverges: %v", workers, err)
		}
	}

	wantA, err := Analyze(g, AnalyzeOptions{FastMemory: 32})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for round := 0; round < 2; round++ {
		got, err := ws.Analyze(ctx, AnalyzeOptions{FastMemory: 32})
		if err != nil || !reflect.DeepEqual(got, wantA) {
			t.Fatalf("ws.Analyze round %d diverges from free function: %v", round, err)
		}
	}
}

// TestWorkspacePreCancelledFacade checks the facade methods reject an
// already-cancelled context without touching their engines.
func TestWorkspacePreCancelledFacade(t *testing.T) {
	g := FFT(8)
	ws := Open(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ws.WMax(ctx, nil, WMaxOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("WMax: %v, want context.Canceled", err)
	}
	if _, err := ws.Analyze(ctx, AnalyzeOptions{FastMemory: 8}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Analyze: %v, want context.Canceled", err)
	}
	if _, err := ws.SimulateSweep(ctx, []MemorySweepJob{{Cfg: MemSimConfig{Nodes: 1, FastWords: 8, Policy: MemSimBelady}, Order: TopologicalSchedule(g)}}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateSweep: %v, want context.Canceled", err)
	}
}
