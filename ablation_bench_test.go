package cdagio

// Ablation benchmarks for the design choices called out in DESIGN.md: which
// lower-bound technique wins on which CDAG family, how much the eviction
// policy matters, how much the schedule matters, and what the executable
// per-iteration theorem bounds add over the closed forms.  These are not
// paper figures; they justify the library's internal structure.

import (
	"testing"

	"cdagio/internal/core"
	"cdagio/internal/gen"
	"cdagio/internal/memsim"
	"cdagio/internal/partition"
	"cdagio/internal/pebble"
	"cdagio/internal/wavefront"
)

// BenchmarkAblationBoundTechniques compares the generic lower-bound
// techniques (compulsory I/O, min-cut wavefront, exact optimal search, exact
// U(2S) for Corollary 1) on families where different techniques dominate: the
// FFT butterfly (where wavefronts are weak and the exact search / partition
// reasoning is needed), a CG iteration (where the wavefront bound shines) and
// the outer product (where compulsory I/O already tells the whole story).
func BenchmarkAblationBoundTechniques(b *testing.B) {
	const s = 4
	fft := FFT(4)            // exact search dominates at this scale
	cg := CG(1, 10, 1)       // wavefront bound dominates
	outer := OuterProduct(4) // compulsory bound dominates
	var fftWave, fftExact, cgWave, outerComp float64
	for i := 0; i < b.N; i++ {
		wf, _ := wavefront.WMax(fft, nil)
		fftWave = float64(wavefront.Lemma2Bound(wf, 3))
		opt, err := pebble.OptimalIO(fft, pebble.RBW, 3, pebble.OptimalOptions{})
		if err != nil {
			b.Fatal(err)
		}
		fftExact = float64(opt)
		// The exact U(2S) feeding Corollary 1 is also computed to show its
		// cost; at this graph size the resulting bound is the trivial zero.
		if _, err := partition.MaxVertexSetSizeExact(fft, 2*3, 0); err != nil {
			b.Fatal(err)
		}

		w, _ := wavefront.WMax(cg.Graph, []VertexID{cg.AlphaVertex[0], cg.GammaVertex[0]})
		cgWave = float64(wavefront.Lemma2Bound(w, s))

		outerComp = float64(outer.NumInputs() + outer.NumOutputs())
	}
	b.ReportMetric(fftWave, "fft-wavefront-LB")
	b.ReportMetric(fftExact, "fft-exact-optimal")
	b.ReportMetric(cgWave, "cg-wavefront-LB")
	b.ReportMetric(outerComp, "outer-compulsory-LB")
}

// BenchmarkAblationEvictionPolicy measures how much the Belady policy saves
// over LRU for the same schedule on an FFT CDAG.
func BenchmarkAblationEvictionPolicy(b *testing.B) {
	g := FFT(64)
	const s = 16
	var belady, lru float64
	for i := 0; i < b.N; i++ {
		rb, err := PlayTopological(g, RBW, s, Belady)
		if err != nil {
			b.Fatal(err)
		}
		rl, err := PlayTopological(g, RBW, s, LRU)
		if err != nil {
			b.Fatal(err)
		}
		belady, lru = float64(rb.IO()), float64(rl.IO())
	}
	b.ReportMetric(belady, "belady-IO")
	b.ReportMetric(lru, "lru-IO")
	b.ReportMetric(lru/belady, "lru/belady")
}

// BenchmarkAblationSchedule measures how much locality-aware schedules save
// over the plain topological order for matmul (blocked) and a 2-D stencil
// (skewed time tiles) at a fixed fast-memory size.
func BenchmarkAblationSchedule(b *testing.B) {
	const s = 64
	mm := MatMul(16)
	jr := Jacobi(2, 24, 8, StencilBox)
	var mmNaive, mmBlocked, jNaive, jTiled float64
	cfg := memsim.Config{Nodes: 1, FastWords: s, Policy: memsim.Belady}
	// The per-schedule ablations are independent simulations; fan each
	// graph's schedule set out over the worker pool.  Schedule construction
	// stays inside the timed loop, as in the serial BENCH_1 workload.
	for i := 0; i < b.N; i++ {
		mmJobs := []MemorySweepJob{
			{Cfg: cfg, Order: TopologicalSchedule(mm.Graph)},
			{Cfg: cfg, Order: MatMulBlocked(mm, 4)},
		}
		jrJobs := []MemorySweepJob{
			{Cfg: cfg, Order: TopologicalSchedule(jr.Graph)},
			{Cfg: cfg, Order: StencilSkewed(jr, 5)},
		}
		mmStats, err := SimulateMemorySweep(mm.Graph, mmJobs, 0)
		if err != nil {
			b.Fatal(err)
		}
		jrStats, err := SimulateMemorySweep(jr.Graph, jrJobs, 0)
		if err != nil {
			b.Fatal(err)
		}
		mmNaive, mmBlocked = float64(mmStats[0].VerticalTotal()), float64(mmStats[1].VerticalTotal())
		jNaive, jTiled = float64(jrStats[0].VerticalTotal()), float64(jrStats[1].VerticalTotal())
	}
	b.ReportMetric(mmNaive/mmBlocked, "matmul-naive/blocked")
	b.ReportMetric(jNaive/jTiled, "jacobi-naive/tiled")
}

// BenchmarkAblationExecutableTheorem compares the executable per-iteration
// Theorem 8 bound (measured wavefronts on the generated CDAG) against the
// closed form it certifies.
func BenchmarkAblationExecutableTheorem(b *testing.B) {
	cg := gen.CG(1, 16, 2)
	const s = 6
	var tb core.TheoremBound
	for i := 0; i < b.N; i++ {
		tb = core.CGMinCutBound(cg, s)
	}
	b.ReportMetric(float64(tb.Total), "executable-LB")
	b.ReportMetric(tb.ClosedForm, "closed-form-LB")
}

// BenchmarkAblationRecomputation quantifies how much recomputation (the
// Hong–Kung game) can save over the RBW game on the composite CDAG, the
// phenomenon that motivates the paper's model change.
func BenchmarkAblationRecomputation(b *testing.B) {
	const n = 12
	comp := Composite(n)
	var hk, rbw float64
	for i := 0; i < b.N; i++ {
		res, _, err := core.PlayCompositeStrategy(n)
		if err != nil {
			b.Fatal(err)
		}
		hk = float64(res.IO())
		// The RBW game cannot recompute: even with the same fast memory the
		// intermediate matrices must be spilled.
		r, err := pebble.PlayTopological(comp.Graph, pebble.RBW, 4*n+6, pebble.Belady)
		if err != nil {
			b.Fatal(err)
		}
		rbw = float64(r.IO())
	}
	b.ReportMetric(hk, "hong-kung-strategy-IO")
	b.ReportMetric(rbw, "rbw-no-recompute-IO")
	b.ReportMetric(rbw/hk, "rbw/hk-ratio")
}
