package cdagio

import (
	"math"
	"strings"
	"testing"

	"cdagio/internal/memsim"
	"cdagio/internal/pebble"
	"cdagio/internal/prbw"
)

// TestFacadeEndToEnd exercises the public API the way the README shows it:
// generate a CDAG, play games on it, analyze it, and run the paper's
// evaluation entry points.
func TestFacadeEndToEnd(t *testing.T) {
	// Generators.
	jr := Jacobi(2, 8, 3, StencilBox)
	if jr.Graph.NumVertices() != 64*4 {
		t.Fatalf("Jacobi CDAG size %d", jr.Graph.NumVertices())
	}
	mm := MatMul(4)
	if mm.Graph.NumOutputs() != 16 {
		t.Fatalf("MatMul outputs %d", mm.Graph.NumOutputs())
	}
	if FFT(8).NumVertices() != 32 || Chain(5).NumVertices() != 5 ||
		DotProduct(4).NumOutputs() != 1 || OuterProduct(3).NumOutputs() != 9 ||
		Saxpy(3).NumOutputs() != 3 || ReductionTree(4).NumOutputs() != 1 ||
		Pyramid(3).NumOutputs() != 1 || BinomialTree(2).NumInputs() != 4 {
		t.Fatalf("generator facade wrong")
	}

	// Sequential game.
	res, err := PlayTopological(jr.Graph, RBW, 32, Belady)
	if err != nil {
		t.Fatalf("PlayTopological: %v", err)
	}
	if res.IO() < jr.Graph.NumInputs()+jr.Graph.NumOutputs() {
		t.Fatalf("I/O below compulsory")
	}
	skewed, err := PlaySchedule(jr.Graph, RBW, 32, StencilSkewed(jr, 4), Belady, false)
	if err != nil {
		t.Fatalf("PlaySchedule: %v", err)
	}
	if skewed.IO() <= 0 {
		t.Fatalf("skewed I/O zero")
	}
	if _, err := OptimalIO(Chain(4), RBW, 2, pebble.OptimalOptions{}); err != nil {
		t.Fatalf("OptimalIO: %v", err)
	}

	// Manual game via the facade.
	g := Chain(3)
	game := NewGame(g, RBW, 2, false)
	if err := game.Apply(pebble.Move{Kind: pebble.Load, V: 0}); err != nil {
		t.Fatalf("Apply: %v", err)
	}

	// Analysis.
	an, err := Analyze(jr.Graph, AnalyzeOptions{FastMemory: 32})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if an.BestLower().Value <= 0 || an.Upper.Value < an.BestLower().Value {
		t.Fatalf("analysis inconsistent: %+v", an)
	}

	// Parallel game and simulator.
	topo := Distributed(2, 1, 12, 64, 1<<16)
	stats, err := PlayParallel(jr.Graph, topo, prbw.OwnerCompute(jr.Graph, BlockPartitionGrid(jr, 2)))
	if err != nil {
		t.Fatalf("PlayParallel: %v", err)
	}
	if stats.TotalComputes() != int64(jr.Graph.NumOperations()) {
		t.Fatalf("parallel computes wrong")
	}
	sim, err := SimulateMemory(jr.Graph, memsim.Config{Nodes: 2, FastWords: 64, Policy: memsim.Belady},
		TopologicalSchedule(jr.Graph), BlockPartitionGrid(jr, 2))
	if err != nil {
		t.Fatalf("SimulateMemory: %v", err)
	}
	if sim.VerticalTotal() <= 0 {
		t.Fatalf("simulator measured nothing")
	}

	// Wavefronts and closed-form bounds.
	cg := CG(1, 6, 1)
	if WavefrontAt(cg.Graph, cg.AlphaVertex[0]) < 12 {
		t.Fatalf("CG wavefront too small")
	}
	if w, at := WMax(cg.Graph, []VertexID{cg.AlphaVertex[0]}); w < 12 || at != cg.AlphaVertex[0] {
		t.Fatalf("WMax wrong: %d at %d", w, at)
	}
	if MatMulLower(10, 8).Value <= 0 || FFTLower(64, 8).Value <= 0 {
		t.Fatalf("closed forms not positive")
	}
	if JacobiLower(JacobiParams{Dim: 2, N: 10, Steps: 5, Processors: 1, Nodes: 1}, 8).Value <= 0 {
		t.Fatalf("Jacobi bound not positive")
	}
	if CGVerticalLower(CGParams{Dim: 2, N: 10, Iterations: 2, Processors: 1, Nodes: 1}, 8).Value <= 0 {
		t.Fatalf("CG bound not positive")
	}
	if GMRESVerticalLower(GMRESParams{Dim: 2, N: 10, Iterations: 2, Processors: 1, Nodes: 1}, 8).Value <= 0 {
		t.Fatalf("GMRES bound not positive")
	}
	if CGHorizontalUpper(CGParams{Dim: 2, N: 10, Iterations: 2, Nodes: 4}).Value <= 0 ||
		GMRESHorizontalUpper(GMRESParams{Dim: 2, N: 10, Iterations: 2, Nodes: 4}).Value <= 0 ||
		JacobiHorizontal(JacobiParams{Dim: 2, N: 10, Steps: 5, Nodes: 4}).Value <= 0 {
		t.Fatalf("horizontal bounds not positive")
	}

	// Machines and evaluations.
	if m, err := LookupMachine("IBM BG/Q"); err != nil || m.Nodes != 2048 {
		t.Fatalf("LookupMachine: %v", err)
	}
	gm := GenericMachine("toy", 2, 2, 1e9, 1024, 1<<20, 1e9, 1e8)
	if gm.TotalCores() != 4 {
		t.Fatalf("GenericMachine wrong")
	}
	if !strings.Contains(Table1Report(), "IBM BG/Q") {
		t.Fatalf("Table1Report wrong")
	}
	bgq := IBMBGQ()
	cgev, err := EvaluateCG(CGParams{Dim: 3, N: 1000, Iterations: 10,
		Processors: bgq.Nodes * bgq.CoresPerNode, Nodes: bgq.Nodes}, Table1Machines())
	if err != nil || math.Abs(cgev.VerticalPerFlop-0.3) > 1e-9 {
		t.Fatalf("EvaluateCG: %v %v", err, cgev)
	}
	if _, err := EvaluateGMRES(3, 1000, bgq.Nodes*bgq.CoresPerNode, bgq.Nodes, []int{5}, Table1Machines()); err != nil {
		t.Fatalf("EvaluateGMRES: %v", err)
	}
	if _, err := EvaluateJacobi(bgq, 4); err != nil {
		t.Fatalf("EvaluateJacobi: %v", err)
	}
	comp, err := EvaluateComposite(8)
	if err != nil || comp.StrategyIO != 33 {
		t.Fatalf("EvaluateComposite: %v %+v", err, comp)
	}

	// Topology construction from a machine.
	ft := TopologyFromMachine(bgq, 32, 4096)
	if ft.Nodes() != 2048 {
		t.Fatalf("TopologyFromMachine wrong")
	}
	if TwoLevel(2, 4, 64).NumLevels() != 2 {
		t.Fatalf("TwoLevel wrong")
	}

	// Heat-equation and SpMV generators.
	heat := HeatEquation1DGraph(8, 2)
	if heat.Graph.NumInputs() != 8 || heat.Graph.NumOutputs() != 8 {
		t.Fatalf("heat CDAG tags wrong")
	}
	sp := SpMV(3, [][]int{{0, 1}, {1, 2}, {2}})
	if sp.Graph.NumOutputs() != 3 {
		t.Fatalf("SpMV CDAG wrong")
	}

	// Executable theorem bounds.
	tb := CGMinCutBound(cg, 4)
	if tb.Total <= 0 || len(tb.PerIteration) != 1 {
		t.Fatalf("CGMinCutBound wrong: %+v", tb)
	}
	gmres := GMRES(1, 6, 2)
	tbg := GMRESMinCutBound(gmres, 4)
	if tbg.Total <= 0 || len(tbg.PerIteration) != 2 {
		t.Fatalf("GMRESMinCutBound wrong: %+v", tbg)
	}

	// Tracer.
	tr := NewTracer("t")
	a := tr.Input("a", 2)
	b := tr.Input("b", 3)
	tr.Output(tr.Mul(a, b))
	if tr.Graph().NumVertices() != 3 {
		t.Fatalf("tracer facade wrong")
	}

	// Graph construction.
	ng := NewGraph("manual", 2)
	x := ng.AddInput("x")
	y := ng.AddOutput("y")
	ng.AddEdge(x, y)
	if ng.NumEdges() != 1 {
		t.Fatalf("manual graph wrong")
	}

	// Blocked matmul schedule through the facade.
	if len(MatMulBlocked(mm, 2)) != mm.Graph.NumOperations() {
		t.Fatalf("MatMulBlocked wrong")
	}
}
