package cdagio

import (
	"context"

	"cdagio/internal/core"
)

// Workspace is a reusable per-graph analysis handle, the package's primary
// entry point: it owns the graph's compiled CSR rows, the cached static
// vertex-split cut network and pooled cut solvers, and the memoized schedules
// and candidate samples, so repeated analyses of one CDAG amortize all
// derived state.  Every long-running engine method takes a context.Context
// and returns ctx.Err() promptly once it is cancelled, which is what makes
// the engines usable behind a server: cancel the context and the candidate
// scan stops at its next pruning-tier boundary, the sweep before its next
// job, the exact search between state settlements.
//
// Open one Workspace per graph and reuse it:
//
//	ws := cdagio.Open(g)
//	analysis, err := ws.Analyze(ctx, cdagio.AnalyzeOptions{FastMemory: 64})
//	w, at, err := ws.WMax(ctx, nil, cdagio.WMaxOptions{})
//	stats, err := ws.SimulateSweep(ctx, jobs, 0)
//
// Under context.Background() every method is bit-identical to the deprecated
// free functions, at every worker count.  The graph's structure and input
// tagging must stay fixed while a Workspace is bound to it (output-tag flips
// remain legal); all methods are safe for concurrent use.
type Workspace = core.Workspace

// Open returns a Workspace bound to g: the per-graph handle that owns all
// derived analysis state.  Opening compiles g's CSR adjacency; everything
// else — cut networks, schedules, candidate samples — is derived lazily by
// the first method that needs it and reused by every later call.
func Open(g *Graph) *Workspace { return core.NewWorkspace(g) }

// openBackground is the shim behind the deprecated free functions: a fresh
// single-use Workspace under a never-cancelled context.
func openBackground(g *Graph) (*Workspace, context.Context) {
	//cdaglint:allow ctxflow deprecated free-function shim; pre-PR-5 API promised a never-cancelled run
	return core.NewWorkspace(g), context.Background()
}
